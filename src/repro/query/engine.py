"""Streaming SPARQL SELECT/ASK execution over a SuccinctEdge store.

The engine compiles a parsed query into a *pull-based pipeline* of generator
operators (:mod:`repro.query.operators`): triple-pattern scans and
bind-propagation joins stream bindings one at a time on top of the batched
SDS kernels, and the solution modifiers (aggregation, ORDER BY with a top-k
short circuit, projection, DISTINCT, the lazy OFFSET/LIMIT slice) are chained
behind them exactly as planned by
:meth:`~repro.query.optimizer.JoinOrderOptimizer.plan_modifiers`.  Because
consumers pull, a ``LIMIT 10`` stops every upstream operator after ten rows
— the remaining triple-pattern probes (and their SDS kernel calls) never
execute — and ``ASK`` stops after the first solution.

The previous list-materializing evaluation survives as
:class:`~repro.query.materializing.MaterializingQueryEngine`; the
differential tests check that the two return byte-identical results.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple, Union as TypingUnion

from repro.query import operators as ops
from repro.query.optimizer import JoinOrderOptimizer
from repro.query.plan import JoinMethod, ModifierOp, PhysicalPlan, PipelinePlan
from repro.query.tp_eval import TriplePatternEvaluator
from repro.sparql.algebra import group_solutions
from repro.sparql.ast import (
    AskQuery,
    GroupGraphPattern,
    Query,
    SelectQuery,
    TriplePattern,
)
from repro.sparql.bindings import AskResult, Binding, ResultSet
from repro.sparql.parser import parse_query
from repro.store.succinct_edge import SuccinctEdge


class QueryEngine:
    """Executes SELECT/ASK queries (supported subset) against a SuccinctEdge store.

    Parameters
    ----------
    store:
        The SuccinctEdge instance to query.
    reasoning:
        When ``True`` (the paper's native mode), concept and property
        hierarchy inferences are answered through LiteMat identifier
        intervals at query time.
    join_strategy:
        ``"auto"`` follows the optimizer's choice (merge joins where the PSO
        order allows them, bind propagation otherwise); ``"bind"`` forces
        bind propagation everywhere; ``"merge"`` forces sort-merge joins where
        a single shared variable exists.  The ablation benchmark compares the
        strategies.
    """

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        join_strategy: str = "auto",
    ) -> None:
        if join_strategy not in ("auto", "bind", "merge"):
            raise ValueError(f"unknown join strategy {join_strategy!r}")
        self.store = store
        self.reasoning = reasoning
        self.join_strategy = join_strategy
        self.evaluator = TriplePatternEvaluator(store, reasoning=reasoning)
        # Runtime estimates reuse the evaluator's Algorithm-2 counts on the
        # SDS rank/select directories when dictionary statistics draw a blank.
        self.optimizer = JoinOrderOptimizer(
            statistics=store.statistics,
            runtime_estimator=self.evaluator.estimate_cardinality,
        )
        # Plans per BGP (patterns are frozen/hashable).  OPTIONAL groups are
        # re-evaluated seeded once per upstream row; without the cache every
        # row would re-run the optimizer and its SDS cardinality probes.
        self._plan_cache: Dict[Tuple[TriplePattern, ...], PhysicalPlan] = {}

    def _plan_bgp(self, patterns: List[TriplePattern]) -> PhysicalPlan:
        """The (cached) physical plan for one BGP."""
        key = tuple(patterns)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self.optimizer.optimize(patterns)
            self._plan_cache[key] = plan
        return plan

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def execute(
        self, query: TypingUnion[str, Query]
    ) -> TypingUnion[ResultSet, AskResult]:
        """Parse (if needed) and execute a query.

        Returns a :class:`~repro.sparql.bindings.ResultSet` for SELECT
        queries and an :class:`~repro.sparql.bindings.AskResult` (truthy iff
        the pattern has a solution) for ASK queries.  Execution is lazy
        end-to-end: the result is materialized here, but upstream operators
        only ever produce the rows the solution modifiers actually consume.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        if isinstance(parsed, AskQuery):
            return self.ask(parsed)
        assert isinstance(parsed, SelectQuery)
        names = parsed.projected_names()
        return ResultSet(names, self.stream(parsed))

    def ask(self, query: TypingUnion[str, AskQuery]) -> AskResult:
        """Execute an ASK query, stopping at the first solution found."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if not isinstance(parsed, AskQuery):
            raise TypeError(f"ask() needs an ASK query, got {type(parsed).__name__}")
        solutions = self._group_stream(parsed.where, Binding())
        return AskResult(next(solutions, None) is not None)

    def stream(self, query: TypingUnion[str, SelectQuery]) -> Iterator[Binding]:
        """The streaming entry point: yield projected solutions one by one.

        The returned iterator drives the whole operator pipeline lazily —
        consuming only a prefix (e.g. ``itertools.islice``) evaluates only
        that prefix, which is what the edge server uses to serve paginated
        results without computing full answer sets.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        if not isinstance(parsed, SelectQuery):
            raise TypeError(f"stream() needs a SELECT query, got {type(parsed).__name__}")
        stream: Iterator[Binding] = self._group_stream(parsed.where, Binding())
        names = parsed.projected_names()
        for step in self.optimizer.plan_modifiers(parsed):
            if step.op == ModifierOp.AGGREGATE:
                stream = iter(group_solutions(parsed, list(stream)))
            elif step.op == ModifierOp.EXTEND:
                stream = ops.extend_select(stream, parsed.select_expressions())
            elif step.op == ModifierOp.SORT:
                stream = iter(ops.order(stream, parsed.order_by))
            elif step.op == ModifierOp.TOP_K:
                fetch = (parsed.offset or 0) + (parsed.limit or 0)
                stream = iter(ops.top_k(stream, parsed.order_by, fetch))
            elif step.op == ModifierOp.PROJECT:
                stream = ops.project(stream, names)
            elif step.op == ModifierOp.DISTINCT:
                stream = ops.distinct(stream, names)
            elif step.op == ModifierOp.SLICE:
                stream = ops.slice_solutions(stream, parsed.offset, parsed.limit)
        return stream

    def plan(self, query: TypingUnion[str, Query]) -> PhysicalPlan:
        """The physical plan for the query's top-level BGP (EXPLAIN).

        Covers the WHERE clause's basic graph pattern only — the join order,
        access paths and join methods of the paper's Algorithm 1.  Use
        :meth:`pipeline_plan` for the full pipeline including the
        solution-modifier operators.
        """
        parsed = parse_query(query) if isinstance(query, str) else query
        return self.optimizer.optimize(list(parsed.where.bgp.patterns))

    def pipeline_plan(self, query: TypingUnion[str, Query]) -> PipelinePlan:
        """The full execution plan: BGP steps plus solution-modifier operators."""
        parsed = parse_query(query) if isinstance(query, str) else query
        where = self.optimizer.optimize(list(parsed.where.bgp.patterns))
        if isinstance(parsed, SelectQuery):
            return PipelinePlan(where=where, modifiers=self.optimizer.plan_modifiers(parsed))
        return PipelinePlan(where=where, modifiers=[])

    def explain(self, query: TypingUnion[str, Query]) -> str:
        """Multi-line EXPLAIN output for the full pipeline."""
        return self.pipeline_plan(query).explain()

    # ------------------------------------------------------------------ #
    # group evaluation (streaming)
    # ------------------------------------------------------------------ #

    def _group_stream(self, group: GroupGraphPattern, seed: Binding) -> Iterator[Binding]:
        """The WHERE-clause pipeline for one group graph pattern.

        Operators are chained in the engine's evaluation order: BGP joins,
        UNION combination, OPTIONAL left-outer joins, VALUES, BINDs, then
        FILTERs.  ``seed`` pre-binds variables (used by OPTIONAL evaluation,
        where the outer solution propagates into the group's patterns).

        This is a generator function, so *nothing* — including UNION branch
        materialization — happens before the first solution is pulled;
        ``ASK``/``LIMIT`` early termination survives pipeline construction.
        """
        stream = self._bgp_stream(list(group.bgp.patterns), seed)
        for union in group.unions:
            branch_solutions: List[Binding] = []
            for branch in union.branches:
                branch_solutions.extend(self._group_stream(branch, Binding()))
            stream = ops.union_combine(stream, branch_solutions)
        for optional in group.optionals:
            stream = ops.optional_join(stream, optional, self._group_stream)
        for block in group.values:
            stream = ops.values_join(stream, block)
        for bind in group.binds:
            stream = ops.extend(stream, bind)
        for constraint in group.filters:
            stream = ops.filter_solutions(stream, constraint.expression)
        yield from stream

    # ------------------------------------------------------------------ #
    # BGP evaluation (left-deep streaming pipeline)
    # ------------------------------------------------------------------ #

    def _bgp_stream(self, patterns: List[TriplePattern], seed: Binding) -> Iterator[Binding]:
        """Chain the planned BGP steps into a lazy left-deep join pipeline.

        Bind-propagation joins stream; a merge join materializes the pipeline
        prefix first (it needs the whole left side anyway, and the merge
        decision compares its size against the pattern's cardinality
        estimate, mirroring the materializing engine step for step).  A
        generator function, so even that materialization waits for the
        first pull.
        """
        if not patterns:
            yield seed
            return
        plan = self._plan_bgp(patterns)
        stream: Iterator[Binding] = iter([seed])
        bound: Set[str] = set(seed)
        for position, step in enumerate(plan.steps):
            if position == 0:
                stream = ops.bind_join(self.evaluator, stream, step.pattern)
            else:
                stream = self._join_step(stream, step.pattern, step.join_method, bound)
            bound.update(step.pattern.variable_names())
        yield from stream

    def _join_step(
        self,
        stream: Iterator[Binding],
        pattern: TriplePattern,
        planned: JoinMethod,
        bound: Set[str],
    ) -> Iterator[Binding]:
        """One join of the left-deep plan, honouring the join-strategy knob."""
        shared = [name for name in pattern.variable_names() if name in bound]
        if self.join_strategy == "bind":
            return ops.bind_join(self.evaluator, stream, pattern)
        if self.join_strategy == "merge":
            if len(shared) != 1:
                return ops.bind_join(self.evaluator, stream, pattern)
            left = list(stream)
            return ops.merge_join(self.evaluator, left, pattern, shared[0])
        if planned == JoinMethod.MERGE and len(shared) == 1:
            # The merge decision needs the left cardinality: a merge join
            # enumerates the pattern's whole property run, which only pays
            # off when the prefix is at least comparable in size.  The
            # prefix is materialized here — the merge join would have to
            # buffer it anyway.
            left = list(stream)
            if not left:
                return iter(())
            right_estimate = self.evaluator.estimate_cardinality(pattern)
            if right_estimate > 2 * len(left):
                return ops.bind_join(self.evaluator, iter(left), pattern)
            return ops.merge_join(self.evaluator, left, pattern, shared[0])
        return ops.bind_join(self.evaluator, stream, pattern)
