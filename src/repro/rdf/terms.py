"""RDF terms and triples.

Terms follow RDF 1.1: URIs (IRIs), blank nodes and literals (with optional
datatype and language tag).  All term classes are immutable, hashable and
totally ordered, which lets graphs, dictionaries and store builders sort and
deduplicate them deterministically.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Union


class URI:
    """An IRI reference, e.g. ``http://www.w3.org/1999/02/22-rdf-syntax-ns#type``."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        if not value:
            raise ValueError("URI value must be a non-empty string")
        self.value = value

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"URI({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, URI) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("URI", self.value))

    def __lt__(self, other: "Term") -> bool:
        return _sort_key(self) < _sort_key(other)

    def n3(self) -> str:
        """N-Triples serialisation of the term."""
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """The fragment or last path segment of the IRI."""
        for separator in ("#", "/"):
            if separator in self.value:
                return self.value.rsplit(separator, 1)[1]
        return self.value


class BlankNode:
    """A blank (anonymous) node identified only within a local graph."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        if not label:
            raise ValueError("BlankNode label must be a non-empty string")
        self.label = label

    def __str__(self) -> str:
        return f"_:{self.label}"

    def __repr__(self) -> str:
        return f"BlankNode({self.label!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankNode) and self.label == other.label

    def __hash__(self) -> int:
        return hash(("BlankNode", self.label))

    def __lt__(self, other: "Term") -> bool:
        return _sort_key(self) < _sort_key(other)

    def n3(self) -> str:
        """N-Triples serialisation of the term."""
        return f"_:{self.label}"


_XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_BOOLEAN = _XSD + "boolean"
XSD_DATETIME = _XSD + "dateTime"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE})


class Literal:
    """An RDF literal with optional datatype IRI and language tag."""

    __slots__ = ("lexical", "datatype", "language")

    def __init__(
        self,
        lexical: Union[str, int, float, bool],
        datatype: Optional[str] = None,
        language: Optional[str] = None,
    ) -> None:
        if isinstance(lexical, bool):
            datatype = datatype or XSD_BOOLEAN
            lexical = "true" if lexical else "false"
        elif isinstance(lexical, int):
            datatype = datatype or XSD_INTEGER
            lexical = str(lexical)
        elif isinstance(lexical, float):
            datatype = datatype or XSD_DOUBLE
            lexical = repr(lexical)
        if language is not None and datatype is not None:
            raise ValueError("a literal cannot carry both a language tag and a datatype")
        self.lexical = lexical
        self.datatype = datatype if (datatype or language) else XSD_STRING
        self.language = language

    def __str__(self) -> str:
        return self.lexical

    def __repr__(self) -> str:
        return f"Literal({self.lexical!r}, datatype={self.datatype!r}, language={self.language!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash(("Literal", self.lexical, self.datatype, self.language))

    def __lt__(self, other: "Term") -> bool:
        return _sort_key(self) < _sort_key(other)

    @property
    def is_numeric(self) -> bool:
        """Whether the literal carries an xsd numeric datatype."""
        return self.datatype in _NUMERIC_DATATYPES

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert the literal to the closest Python value."""
        if self.datatype == XSD_INTEGER:
            return int(self.lexical)
        if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
            return float(self.lexical)
        if self.datatype == XSD_BOOLEAN:
            return self.lexical.strip().lower() in ("true", "1")
        return self.lexical

    def n3(self) -> str:
        """N-Triples serialisation of the term."""
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'


Term = Union[URI, BlankNode, Literal]


def _sort_key(term: Term) -> tuple:
    if isinstance(term, URI):
        return (0, term.value)
    if isinstance(term, BlankNode):
        return (1, term.label)
    return (2, term.lexical, term.datatype or "", term.language or "")


class Triple(NamedTuple):
    """A single RDF statement ``(subject, predicate, object)``."""

    subject: Union[URI, BlankNode]
    predicate: URI
    object: Term

    def n3(self) -> str:
        """N-Triples serialisation, without the trailing newline."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"
