"""In-memory multi-index triple store (Jena in-memory / RDF4J analogue).

The classic design the paper compares against: a node dictionary plus three
hash-based indexes (SPO, POS, OSP) over encoded triples.  Query answering is
fast, but every triple is stored three times and the per-entry object
overhead of a managed runtime makes the memory footprint grow quickly — the
very trade-off SuccinctEdge's single SDS index avoids (Figure 11).

The storage accounting applies documented per-entry overhead constants that
model the JVM object/indexing overheads reported for these systems; the
constants are parameters of the class so the ablation benchmark can vary
them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.baselines.base import EdgeRDFStore
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, Triple, URI


class MultiIndexMemoryStore(EdgeRDFStore):
    """Dictionary-encoded triple store with SPO / POS / OSP indexes.

    Parameters
    ----------
    bytes_per_index_entry:
        Modelled per-triple, per-index overhead (object headers, hash buckets,
        pointers) of the emulated JVM store.
    bytes_per_dictionary_entry:
        Modelled fixed overhead per dictionary entry, added to the term's
        UTF-8 length (stored twice: value->id and id->value maps).
    per_query_overhead_ms:
        Modelled fixed query-setup cost (parser, algebra, iterator plumbing)
        of the emulated engine on the paper's Raspberry Pi; charged to
        ``last_simulated_cost_ms`` at every query.
    per_result_overhead_ms:
        Modelled per-result materialisation cost of the emulated engine.
    """

    name = "MultiIndexMemory"
    supports_union = True
    in_memory = True

    def __init__(
        self,
        bytes_per_index_entry: int = 52,
        bytes_per_dictionary_entry: int = 40,
        per_query_overhead_ms: float = 0.0,
        per_result_overhead_ms: float = 0.0,
    ) -> None:
        super().__init__()
        self.bytes_per_index_entry = bytes_per_index_entry
        self.bytes_per_dictionary_entry = bytes_per_dictionary_entry
        self.per_query_overhead_ms = per_query_overhead_ms
        self.per_result_overhead_ms = per_result_overhead_ms
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Term] = []
        self._spo: Dict[int, Dict[int, Set[int]]] = {}
        self._pos: Dict[int, Dict[int, Set[int]]] = {}
        self._osp: Dict[int, Dict[int, Set[int]]] = {}
        self._count = 0

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def load(self, data: Graph, ontology: Optional[Graph] = None) -> None:
        """Encode and index every triple of ``data``."""
        self._remember_schema(data, ontology)
        for triple in data:
            self._insert(triple)

    def _encode(self, term: Term) -> int:
        identifier = self._term_to_id.get(term)
        if identifier is None:
            identifier = len(self._id_to_term)
            self._term_to_id[term] = identifier
            self._id_to_term.append(term)
        return identifier

    def _insert(self, triple: Triple) -> None:
        s = self._encode(triple.subject)
        p = self._encode(triple.predicate)
        o = self._encode(triple.object)
        level = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in level:
            return
        level.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._count += 1

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #

    def triple_count(self) -> int:
        """Number of stored triples."""
        return self._count

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the pattern through the cheapest index."""
        s = self._term_to_id.get(subject) if subject is not None else None
        p = self._term_to_id.get(predicate) if predicate is not None else None
        o = self._term_to_id.get(obj) if obj is not None else None
        if subject is not None and s is None:
            return
        if predicate is not None and p is None:
            return
        if obj is not None and o is None:
            return
        for s_id, p_id, o_id in self._match_ids(s, p, o):
            yield Triple(
                self._id_to_term[s_id],  # type: ignore[arg-type]
                self._id_to_term[p_id],  # type: ignore[arg-type]
                self._id_to_term[o_id],
            )

    def _match_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> Iterator[Tuple[int, int, int]]:
        if s is not None:
            by_predicate = self._spo.get(s, {})
            predicates = [p] if p is not None else list(by_predicate)
            for p_id in predicates:
                objects = by_predicate.get(p_id, set())
                if o is not None:
                    if o in objects:
                        yield s, p_id, o
                else:
                    for o_id in objects:
                        yield s, p_id, o_id
            return
        if p is not None:
            by_object = self._pos.get(p, {})
            objects = [o] if o is not None else list(by_object)
            for o_id in objects:
                for s_id in by_object.get(o_id, set()):
                    yield s_id, p, o_id
            return
        if o is not None:
            by_subject = self._osp.get(o, {})
            for s_id, predicates in by_subject.items():
                for p_id in predicates:
                    yield s_id, p_id, o
            return
        for s_id, by_predicate in self._spo.items():
            for p_id, objects in by_predicate.items():
                for o_id in objects:
                    yield s_id, p_id, o_id

    # ------------------------------------------------------------------ #
    # SPARQL with the simulated engine overheads
    # ------------------------------------------------------------------ #

    def query(self, query, reasoning: bool = False):
        """Answer a query and record the simulated engine cost."""
        result = super().query(query, reasoning=reasoning)
        result_rows = len(result) if hasattr(result, "__len__") else 1  # ASK: one row
        self.last_simulated_cost_ms = (
            self.per_query_overhead_ms + self.per_result_overhead_ms * result_rows
        )
        return result

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def dictionary_size_in_bytes(self) -> int:
        """Bidirectional dictionary: strings twice plus fixed per-entry overhead."""
        total = 0
        for term in self._id_to_term:
            total += 2 * len(str(term).encode("utf-8"))
            total += self.bytes_per_dictionary_entry
        return total

    def triple_storage_size_in_bytes(self) -> int:
        """Three index entries per triple with the modelled per-entry overhead."""
        return self._count * 3 * self.bytes_per_index_entry

    def memory_footprint_in_bytes(self) -> int:
        """Dictionaries plus the three in-memory indexes."""
        return self.dictionary_size_in_bytes() + self.triple_storage_size_in_bytes()
