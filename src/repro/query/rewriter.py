"""High-level-concept query helper (paper contribution iv).

The paper's fourth contribution is "a simple and automatic approach to express
complex queries requiring inferences by preventing end-users to learn the
details of used ontologies": maintenance personnel write a query against an
abstract concept (e.g. ``qudt:PressureUnit``) and the system automatically
covers every sensor annotated with any sub-concept, in any unit, through the
LiteMat intervals — no manual enumeration of the ontology.

:class:`HighLevelQueryBuilder` wraps that idea in a small fluent API that
produces a regular :class:`~repro.sparql.ast.SelectQuery` answerable by the
engine with reasoning enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.rdf.namespaces import QUDT, RDF_TYPE, SOSA
from repro.rdf.terms import URI
from repro.sparql.ast import (
    BasicGraphPattern,
    BooleanExpression,
    Comparison,
    Filter,
    GroupGraphPattern,
    Literal,
    SelectQuery,
    TriplePattern,
    Variable,
)


@dataclass
class HighLevelQueryBuilder:
    """Builds anomaly-detection queries from high-level concepts only.

    The generated query follows the fixed SOSA/QUDT observation topology of
    the paper's motivating example (platform → sensor → observation → result)
    and constrains the *unit concept* and the *value range*; reasoning over
    the unit concept hierarchy is delegated to LiteMat at execution time.
    """

    unit_concept: Optional[URI] = None
    value_bounds: Optional[Tuple[Optional[float], Optional[float]]] = None
    platform_concept: URI = field(default_factory=lambda: SOSA.Platform)

    # ------------------------------------------------------------------ #
    # fluent configuration
    # ------------------------------------------------------------------ #

    def measuring(self, unit_concept: URI) -> "HighLevelQueryBuilder":
        """Constrain the observation's unit to ``unit_concept`` (or any sub-concept)."""
        self.unit_concept = unit_concept
        return self

    def outside_range(self, low: Optional[float], high: Optional[float]) -> "HighLevelQueryBuilder":
        """Flag values strictly below ``low`` or strictly above ``high``."""
        self.value_bounds = (low, high)
        return self

    def on_platforms(self, platform_concept: URI) -> "HighLevelQueryBuilder":
        """Restrict to platforms of the given concept (default ``sosa:Platform``)."""
        self.platform_concept = platform_concept
        return self

    # ------------------------------------------------------------------ #
    # query generation
    # ------------------------------------------------------------------ #

    def build(self) -> SelectQuery:
        """Produce the SELECT query implementing the configured detection."""
        platform = Variable("platform")
        sensor = Variable("sensor")
        observation = Variable("observation")
        result = Variable("result")
        value = Variable("value")
        unit = Variable("unit")
        timestamp = Variable("timestamp")

        patterns: List[TriplePattern] = [
            TriplePattern(platform, RDF_TYPE, self.platform_concept),
            TriplePattern(platform, SOSA.hosts, sensor),
            TriplePattern(sensor, RDF_TYPE, SOSA.Sensor),
            TriplePattern(sensor, SOSA.observes, observation),
            TriplePattern(observation, SOSA.hasResult, result),
            TriplePattern(observation, SOSA.resultTime, timestamp),
            TriplePattern(result, QUDT.numericValue, value),
            TriplePattern(result, QUDT.unit, unit),
        ]
        if self.unit_concept is not None:
            patterns.append(TriplePattern(unit, RDF_TYPE, self.unit_concept))

        filters: List[Filter] = []
        if self.value_bounds is not None:
            low, high = self.value_bounds
            clauses = []
            if low is not None:
                clauses.append(Comparison("<", value, Literal(float(low))))
            if high is not None:
                clauses.append(Comparison(">", value, Literal(float(high))))
            if len(clauses) == 1:
                filters.append(Filter(clauses[0]))
            elif clauses:
                filters.append(Filter(BooleanExpression("or", tuple(clauses))))

        where = GroupGraphPattern(bgp=BasicGraphPattern(patterns=patterns), filters=filters)
        projection = [platform, sensor, timestamp, value, unit]
        return SelectQuery(projection=projection, where=where)
