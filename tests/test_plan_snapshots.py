"""Plan-snapshot regression suite: pinned ``explain()`` output per query.

Pins the full pipeline plan (cost-based planner, reasoning on) of all 26
paper queries plus the A1-A6 analytics additions against a checked-in
snapshot, so any PR that changes a plan — intentionally or not — shows the
diff in review instead of silently shifting kernel-call counts.

Regenerate after an intentional planner change with::

    REPRO_UPDATE_PLAN_SNAPSHOTS=1 python -m pytest tests/test_plan_snapshots.py -q

The snapshot is deterministic: the LUBM generator is seeded, plans are pure
functions of (query, statistics), and cost renderings are rounded.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.query.engine import QueryEngine

SNAPSHOT_PATH = pathlib.Path(__file__).parent / "plan_snapshots" / "paper_queries_explain.txt"
_UPDATE = os.environ.get("REPRO_UPDATE_PLAN_SNAPSHOTS", "") not in ("", "0")


def render_snapshot(store, catalog) -> str:
    engine = QueryEngine(store, reasoning=True, planner="cost")
    sections = []
    for query in catalog.extended_queries():
        sections.append(f"### {query.identifier}\n{engine.explain(query.sparql)}\n")
    return "\n".join(sections)


def parse_snapshot(text: str) -> dict:
    sections = {}
    current = None
    lines: list = []
    for line in text.splitlines():
        if line.startswith("### "):
            if current is not None:
                sections[current] = "\n".join(lines).strip()
            current = line[4:].strip()
            lines = []
        else:
            lines.append(line)
    if current is not None:
        sections[current] = "\n".join(lines).strip()
    return sections


@pytest.fixture(scope="module")
def rendered(small_lubm_store, small_lubm_catalog) -> str:
    return render_snapshot(small_lubm_store, small_lubm_catalog)


def test_snapshot_file_exists_or_is_written(rendered):
    if _UPDATE or not SNAPSHOT_PATH.exists():
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(rendered)
    assert SNAPSHOT_PATH.exists()


def test_every_query_plan_matches_snapshot(rendered, small_lubm_catalog):
    if not SNAPSHOT_PATH.exists():  # first run just wrote it
        pytest.skip("snapshot file was just created")
    expected = parse_snapshot(SNAPSHOT_PATH.read_text())
    actual = parse_snapshot(rendered)
    identifiers = [q.identifier for q in small_lubm_catalog.extended_queries()]
    assert set(expected) == set(actual), "snapshot query set drifted — regenerate"
    for identifier in identifiers:
        assert actual[identifier] == expected[identifier], (
            f"plan for {identifier} changed:\n"
            f"--- pinned ---\n{expected[identifier]}\n"
            f"--- current ---\n{actual[identifier]}\n"
            "If intentional, regenerate with REPRO_UPDATE_PLAN_SNAPSHOTS=1."
        )


def test_snapshots_cover_all_32_queries():
    expected = parse_snapshot(SNAPSHOT_PATH.read_text())
    assert len(expected) == 32  # S1-S15, M1-M5, R1-R6, A1-A6


def test_plans_name_their_planner():
    text = SNAPSHOT_PATH.read_text()
    assert "plan [cost-dp]" in text


# --------------------------------------------------------------------------- #
# property-path plans (pinned separately so the 32-query set stays stable)
# --------------------------------------------------------------------------- #

PATH_SNAPSHOT_PATH = pathlib.Path(__file__).parent / "plan_snapshots" / "property_paths_explain.txt"

_PATH_PREFIXES = (
    "PREFIX ex: <http://example.org/>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
)

#: One query per access label of :func:`repro.query.paths.path_access_label`,
#: plus the joined and nested shapes whose ordering the cost model decides.
PATH_SNAPSHOT_QUERIES = [
    ("P1", "SELECT ?s ?o WHERE { ?s ex:subOrganizationOf+ ?o }"),
    ("P2", "SELECT ?o WHERE { ex:dept1 ex:subOrganizationOf* ?o }"),
    ("P3", "SELECT ?x ?y WHERE { ?x (ex:advisor/ex:memberOf)* ?y }"),
    ("P4", "SELECT ?x ?y WHERE { ?x ex:advisor? ?y }"),
    ("P5", "SELECT ?x ?y WHERE { ?x ex:advisor/ex:memberOf ?y }"),
    ("P6", "SELECT ?x ?y WHERE { ?x (ex:memberOf|ex:worksFor) ?y }"),
    ("P7", "SELECT ?x ?y WHERE { ?x ^ex:advisor ?y }"),
    ("P8", "SELECT ?s ?o WHERE { ?s !(ex:name|ex:age|rdf:type) ?o }"),
    ("P9", "SELECT ?x ?o WHERE { ?x rdf:type ex:Department . ?x ex:subOrganizationOf+ ?o }"),
    ("P10", "SELECT ?x ?n WHERE { ?x ex:advisor+/ex:name ?n }"),
]

#: Labels that must each be pinned by at least one snapshot.
PATH_ACCESS_LABELS = [
    "one-or-more/interval-bfs",
    "zero-or-more/interval-bfs",
    "zero-or-more/term-bfs",
    "zero-or-one",
    "sequence",
    "alternation",
    "inverse",
    "negated-set",
]


def render_path_snapshot(store) -> str:
    engine = QueryEngine(store, reasoning=True, planner="cost")
    sections = []
    for identifier, query in PATH_SNAPSHOT_QUERIES:
        sections.append(f"### {identifier}\n{engine.explain(_PATH_PREFIXES + query)}\n")
    return "\n".join(sections)


@pytest.fixture(scope="module")
def rendered_paths(toy_store) -> str:
    return render_path_snapshot(toy_store)


def test_path_snapshot_file_exists_or_is_written(rendered_paths):
    if _UPDATE or not PATH_SNAPSHOT_PATH.exists():
        PATH_SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        PATH_SNAPSHOT_PATH.write_text(rendered_paths)
    assert PATH_SNAPSHOT_PATH.exists()


def test_every_path_plan_matches_snapshot(rendered_paths):
    if not PATH_SNAPSHOT_PATH.exists():  # first run just wrote it
        pytest.skip("snapshot file was just created")
    expected = parse_snapshot(PATH_SNAPSHOT_PATH.read_text())
    actual = parse_snapshot(rendered_paths)
    assert set(expected) == set(actual), "path snapshot query set drifted — regenerate"
    for identifier, _query in PATH_SNAPSHOT_QUERIES:
        assert actual[identifier] == expected[identifier], (
            f"plan for {identifier} changed:\n"
            f"--- pinned ---\n{expected[identifier]}\n"
            f"--- current ---\n{actual[identifier]}\n"
            "If intentional, regenerate with REPRO_UPDATE_PLAN_SNAPSHOTS=1."
        )


def test_path_snapshots_pin_every_access_label():
    text = PATH_SNAPSHOT_PATH.read_text()
    for label in PATH_ACCESS_LABELS:
        assert f"[{label}]" in text, f"no pinned plan uses access label {label}"


def test_path_snapshots_are_costed():
    # Every path step must render a cardinality and a kernel-call cost.
    for section in parse_snapshot(PATH_SNAPSHOT_PATH.read_text()).values():
        path_lines = [line for line in section.splitlines() if line.lstrip().startswith("path")]
        assert path_lines, section
        for line in path_lines:
            assert "card~" in line and "cost~" in line, line
