"""Edge device resource model.

The paper's experimental platform is a Raspberry Pi 3B+ (1 GB of RAM, SD-card
storage, ARM Cortex-A53).  The exact hardware is not available here, so this
module provides a simple, documented resource model used to answer questions
that matter for the deployment scenario:

* does a given store fit in the device's RAM budget? (Section 7.3.2's
  motivation for the compact layout);
* how much energy does query processing cost relative to transmitting the raw
  measures to the cloud? (the motivating example's argument for processing at
  the edge).

The stream processors of :mod:`repro.edge.stream` charge their processing
and transmission costs against an :class:`EdgeDevice`; in the live-update
mode (``docs/update_lifecycle.md``) the delta overlay's memory overhead
counts towards the same RAM budget through
``UpdatableSuccinctEdge.memory_footprint_in_bytes``.  See
``docs/architecture.md`` for where the device model sits in the deployment
loop.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceProfile:
    """Static characteristics of an edge device.

    Attributes
    ----------
    name:
        Human-readable device name.
    ram_bytes:
        Total RAM; the usable budget for an RDF store is a fraction of it.
    usable_ram_fraction:
        Fraction of RAM available to the store (OS and runtime take the rest).
    cpu_factor:
        Relative CPU speed versus the machine running the benchmarks
        (1.0 = same speed; the Pi is considerably slower than a laptop).
    active_power_watts / idle_power_watts:
        Power draw used by the energy model.
    network_energy_joule_per_kb:
        Energy cost of transmitting one kilobyte towards the cloud (used to
        compare edge processing against ship-everything-to-the-cloud).
    """

    name: str
    ram_bytes: int
    usable_ram_fraction: float = 0.5
    cpu_factor: float = 0.1
    active_power_watts: float = 3.5
    idle_power_watts: float = 1.9
    network_energy_joule_per_kb: float = 0.05


@dataclass(frozen=True)
class NetworkProfile:
    """A simulated network link between the edge device and its clients.

    Used by the serving layer (:mod:`repro.serve`) to model response
    transmission over the constrained uplinks of the paper's deployment:
    while a real worker blocks in ``socket.send`` towards a slow client the
    GIL is released, which is exactly what a worker pool overlaps — the
    simulation reproduces that with a sleep of :meth:`transmission_ms`.
    The cluster transport (:mod:`repro.serve.cluster`) additionally models
    the *request* path with :meth:`one_way_ms` — half the round trip plus
    the request payload's serialisation time.

    Attributes
    ----------
    name:
        Human-readable link name.
    rtt_ms:
        Round-trip latency charged once per response.
    bandwidth_kbps:
        Link bandwidth in kilobits per second.
    """

    name: str
    rtt_ms: float
    bandwidth_kbps: float

    def transmission_ms(self, payload_bytes: int) -> float:
        """Milliseconds to deliver ``payload_bytes`` over this link."""
        if self.bandwidth_kbps <= 0:
            return self.rtt_ms
        return self.rtt_ms + (payload_bytes * 8.0) / self.bandwidth_kbps

    def one_way_ms(self, payload_bytes: int) -> float:
        """Milliseconds for one direction: half the RTT plus payload time.

        :meth:`transmission_ms` keeps charging the full RTT on the response
        (its callers model request-response exchanges with one call); this
        is the per-direction quantity for transports that charge the two
        legs of a hop separately.
        """
        if self.bandwidth_kbps <= 0:
            return self.rtt_ms / 2.0
        return self.rtt_ms / 2.0 + (payload_bytes * 8.0) / self.bandwidth_kbps


#: A constrained building-automation backhaul (shared IoT uplink:
#: tens of ms RTT, ~0.5 Mbit/s — between NB-IoT and LTE-M class links).
EDGE_UPLINK = NetworkProfile(name="edge-uplink", rtt_ms=40.0, bandwidth_kbps=500.0)

#: An LTE-class uplink (a few ms slower than LAN, ~2 Mbit/s).
LTE_UPLINK = NetworkProfile(name="lte-uplink", rtt_ms=25.0, bandwidth_kbps=2000.0)

#: Co-located clients (same LAN); transmission time is negligible.
LOCAL_LAN = NetworkProfile(name="local-lan", rtt_ms=0.0, bandwidth_kbps=0.0)


class NetworkPartitioned(ConnectionError):
    """Raised by :class:`SimulatedNetwork` when the simulated link is down.

    Subclasses :class:`ConnectionError` so code handling real socket
    failures handles the simulated ones identically — the cluster transport
    treats both as a replica being unreachable.
    """


class SimulatedNetwork:
    """Charges transmission time (a GIL-releasing sleep) and device energy.

    ``transmit`` is called by the HTTP handler once per response with the
    payload size; with a :class:`EdgeDevice` attached, the transmission
    energy is charged to the device exactly like the stream processors do.
    ``transmit_request`` models the request leg of a hop (half the RTT plus
    the request payload's time) so a full request-response exchange over
    the cluster transport charges both directions.

    Fault injection: :meth:`partition` makes every transmission raise
    :class:`NetworkPartitioned` until :meth:`heal`; :meth:`drop_next`
    deterministically drops exactly the next ``count`` transmissions —
    enough to kill one in-flight request without taking the link down.
    """

    def __init__(self, profile: NetworkProfile, device: "EdgeDevice" = None) -> None:
        self.profile = profile
        self.device = device
        self.transmissions = 0
        self.requests = 0
        self.bytes_transmitted = 0
        self.drops = 0
        self.partitioned = False
        self._drop_budget = 0

    # ---------------------------------------------------------------- #
    # fault injection
    # ---------------------------------------------------------------- #

    def partition(self) -> None:
        """Take the link down: every transmission now raises."""
        self.partitioned = True

    def heal(self) -> None:
        """Bring a partitioned link back up."""
        self.partitioned = False

    def drop_next(self, count: int = 1) -> None:
        """Drop exactly the next ``count`` transmissions, then recover."""
        self._drop_budget += count

    def _checkpoint(self) -> None:
        if self.partitioned:
            self.drops += 1
            raise NetworkPartitioned(f"simulated link {self.profile.name!r} is partitioned")
        if self._drop_budget > 0:
            self._drop_budget -= 1
            self.drops += 1
            raise NetworkPartitioned(f"simulated link {self.profile.name!r} dropped the packet")

    # ---------------------------------------------------------------- #
    # the two legs of a hop
    # ---------------------------------------------------------------- #

    def transmit(self, payload_bytes: int) -> float:
        """Simulate sending ``payload_bytes``; returns the milliseconds spent."""
        import time

        self._checkpoint()
        milliseconds = self.profile.transmission_ms(payload_bytes)
        if milliseconds > 0:
            time.sleep(milliseconds / 1000.0)
        if self.device is not None:
            self.device.charge_transmission(payload_bytes)
        self.transmissions += 1
        self.bytes_transmitted += payload_bytes
        return milliseconds

    def transmit_request(self, payload_bytes: int) -> float:
        """Simulate the request leg of a hop; returns the milliseconds spent."""
        import time

        self._checkpoint()
        milliseconds = self.profile.one_way_ms(payload_bytes)
        if milliseconds > 0:
            time.sleep(milliseconds / 1000.0)
        if self.device is not None:
            self.device.charge_transmission(payload_bytes)
        self.requests += 1
        self.bytes_transmitted += payload_bytes
        return milliseconds

    def __repr__(self) -> str:
        return (
            f"SimulatedNetwork({self.profile.name}, "
            f"{self.transmissions} transmissions, {self.bytes_transmitted} bytes)"
        )


#: The paper's experimental platform.
RASPBERRY_PI_3B_PLUS = DeviceProfile(
    name="Raspberry Pi 3B+",
    ram_bytes=1024 * 1024 * 1024,
    usable_ram_fraction=0.5,
    cpu_factor=0.12,
    active_power_watts=3.5,
    idle_power_watts=1.9,
    network_energy_joule_per_kb=0.05,
)


class EdgeDevice:
    """A device instance tracking memory admission and energy accounting."""

    def __init__(self, profile: DeviceProfile = RASPBERRY_PI_3B_PLUS) -> None:
        self.profile = profile
        self.energy_spent_joules = 0.0
        self.bytes_sent = 0

    # ------------------------------------------------------------------ #
    # memory admission
    # ------------------------------------------------------------------ #

    @property
    def memory_budget_bytes(self) -> int:
        """RAM available to the RDF store."""
        return int(self.profile.ram_bytes * self.profile.usable_ram_fraction)

    def fits_in_memory(self, footprint_bytes: int) -> bool:
        """Whether a store of the given footprint fits in the budget."""
        return footprint_bytes <= self.memory_budget_bytes

    def max_graph_instances(self, footprint_bytes_per_instance: int) -> int:
        """How many graph instances of the given footprint fit simultaneously."""
        if footprint_bytes_per_instance <= 0:
            return 0
        return self.memory_budget_bytes // footprint_bytes_per_instance

    # ------------------------------------------------------------------ #
    # latency / energy model
    # ------------------------------------------------------------------ #

    def scale_latency_ms(self, measured_ms: float) -> float:
        """Project a latency measured on this machine onto the device."""
        if self.profile.cpu_factor <= 0:
            return measured_ms
        return measured_ms / self.profile.cpu_factor

    def charge_processing(self, duration_ms: float) -> float:
        """Account for local processing energy; returns the joules spent."""
        joules = self.profile.active_power_watts * (duration_ms / 1000.0)
        self.energy_spent_joules += joules
        return joules

    def charge_transmission(self, payload_bytes: int) -> float:
        """Account for the energy of sending ``payload_bytes`` to the cloud."""
        kilobytes = payload_bytes / 1024.0
        joules = self.profile.network_energy_joule_per_kb * kilobytes
        self.energy_spent_joules += joules
        self.bytes_sent += payload_bytes
        return joules

    def edge_vs_cloud_energy(
        self,
        processing_ms: float,
        alert_bytes: int,
        raw_graph_bytes: int,
    ) -> dict:
        """Compare the energy of edge processing against shipping raw data.

        Edge strategy: process locally (``processing_ms``) and transmit only
        the alerts; cloud strategy: transmit the full graph instance.  Returns
        both totals in joules (the motivating example's trade-off).
        """
        edge = (
            self.profile.active_power_watts * processing_ms / 1000.0
            + self.profile.network_energy_joule_per_kb * alert_bytes / 1024.0
        )
        cloud = self.profile.network_energy_joule_per_kb * raw_graph_bytes / 1024.0
        return {"edge_joules": edge, "cloud_joules": cloud, "edge_wins": edge < cloud}

    def __repr__(self) -> str:
        return f"EdgeDevice({self.profile.name}, budget={self.memory_budget_bytes // (1024*1024)}MB)"
