"""Abstract syntax tree of the supported SPARQL subset.

The grammar covers the useful core of SPARQL 1.1 SELECT/ASK: a WHERE clause
made of triple patterns, ``FILTER`` constraints, ``BIND`` assignments,
``UNION`` branches (the baselines' reasoning rewrites are unions of BGPs),
``OPTIONAL`` groups (left-outer joins) and ``VALUES`` inline data, plus the
solution modifiers ``GROUP BY`` with aggregates, ``ORDER BY``, ``OFFSET``
and ``LIMIT``.  ``docs/sparql_support.md`` gives the full grammar in EBNF
together with the operator semantics and known deviations from the W3C
recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union as TypingUnion

from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import BlankNode, Literal, URI


@dataclass(frozen=True)
class Variable:
    """A SPARQL variable, e.g. ``?x``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A slot of a triple pattern: either a constant RDF term or a variable.
PatternTerm = TypingUnion[URI, BlankNode, Literal, Variable]


@dataclass(frozen=True)
class TriplePattern:
    """A single triple pattern of a basic graph pattern."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> List[Variable]:
        """Variables appearing in the pattern, in subject/predicate/object order."""
        return [slot for slot in (self.subject, self.predicate, self.object) if isinstance(slot, Variable)]

    def variable_names(self) -> List[str]:
        """Names of the variables appearing in the pattern."""
        return [variable.name for variable in self.variables()]

    @property
    def is_rdf_type(self) -> bool:
        """Whether the predicate is the constant ``rdf:type``."""
        return isinstance(self.predicate, URI) and self.predicate == RDF_TYPE

    def shape(self) -> str:
        """The paper's TP classification string, e.g. ``"s,p,?o"``.

        Constants are lower-case letters, variables are prefixed with ``?``.
        """
        subject = "?s" if isinstance(self.subject, Variable) else "s"
        predicate = "?p" if isinstance(self.predicate, Variable) else "p"
        obj = "?o" if isinstance(self.object, Variable) else "o"
        return f"{subject},{predicate},{obj}"

    def __str__(self) -> str:
        def fmt(slot: PatternTerm) -> str:
            if isinstance(slot, Variable):
                return str(slot)
            return slot.n3()

        return f"{fmt(self.subject)} {fmt(self.predicate)} {fmt(self.object)} ."


# --------------------------------------------------------------------- #
# property paths (SPARQL 1.1 §9)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PathLink:
    """A single predicate step of a property path (``p``)."""

    predicate: URI

    def __str__(self) -> str:
        return self.predicate.n3()


@dataclass(frozen=True)
class PathInverse:
    """An inverse path ``^P`` (traverses the inner path backwards)."""

    path: "PathExpression"

    def __str__(self) -> str:
        return f"^{_path_atom(self.path)}"


@dataclass(frozen=True)
class PathSequence:
    """A sequence path ``P1 / P2 / ...`` (joined end to start)."""

    steps: Tuple["PathExpression", ...]

    def __str__(self) -> str:
        return "/".join(_path_atom(step) for step in self.steps)


@dataclass(frozen=True)
class PathAlternative:
    """An alternation ``P1 | P2 | ...`` (multiset union of the branches)."""

    branches: Tuple["PathExpression", ...]

    def __str__(self) -> str:
        return "|".join(_path_atom(branch) for branch in self.branches)


@dataclass(frozen=True)
class PathZeroOrOne:
    """``P?`` — zero-length match or one traversal of ``P`` (distinct)."""

    path: "PathExpression"

    def __str__(self) -> str:
        return f"{_path_atom(self.path)}?"


@dataclass(frozen=True)
class PathZeroOrMore:
    """``P*`` — reflexive-transitive closure of ``P`` (distinct, ALP)."""

    path: "PathExpression"

    def __str__(self) -> str:
        return f"{_path_atom(self.path)}*"


@dataclass(frozen=True)
class PathOneOrMore:
    """``P+`` — transitive closure of ``P`` (distinct, ALP)."""

    path: "PathExpression"

    def __str__(self) -> str:
        return f"{_path_atom(self.path)}+"


@dataclass(frozen=True)
class PathNegatedSet:
    """A negated property set ``!(p1 | ^p2 | ...)``.

    ``forward`` lists the excluded forward predicates, ``inverse`` the
    excluded predicates appearing under ``^`` — per SPARQL 1.1 §9.1 the two
    directions are evaluated independently and unioned.
    """

    forward: Tuple[URI, ...] = ()
    inverse: Tuple[URI, ...] = ()

    def __str__(self) -> str:
        members = [p.n3() for p in self.forward] + [f"^{p.n3()}" for p in self.inverse]
        if len(members) == 1:
            return f"!{members[0]}"
        return "!(" + "|".join(members) + ")"


#: Any property-path expression node.
PathExpression = TypingUnion[
    PathLink,
    PathInverse,
    PathSequence,
    PathAlternative,
    PathZeroOrOne,
    PathZeroOrMore,
    PathOneOrMore,
    PathNegatedSet,
]

#: Path nodes that print without parentheses when nested.
_ATOMIC_PATHS = (PathLink, PathNegatedSet, PathZeroOrOne, PathZeroOrMore, PathOneOrMore, PathInverse)


def _path_atom(path: "PathExpression") -> str:
    """Render a sub-path, parenthesizing composite nodes."""
    text = str(path)
    if isinstance(path, _ATOMIC_PATHS):
        return text
    return f"({text})"


@dataclass(frozen=True)
class PropertyPathPattern:
    """A triple pattern whose predicate slot is a non-trivial property path.

    Plain constant-predicate patterns stay :class:`TriplePattern` (so the
    BGP planner is untouched); this node only appears when the path uses at
    least one path operator.
    """

    subject: PatternTerm
    path: PathExpression
    object: PatternTerm

    def variables(self) -> List[Variable]:
        """Variables of the endpoint slots, in subject/object order."""
        return [slot for slot in (self.subject, self.object) if isinstance(slot, Variable)]

    def variable_names(self) -> List[str]:
        """Names of the endpoint variables."""
        return [variable.name for variable in self.variables()]

    def __str__(self) -> str:
        def fmt(slot: PatternTerm) -> str:
            if isinstance(slot, Variable):
                return str(slot)
            return slot.n3()

        return f"{fmt(self.subject)} {self.path} {fmt(self.object)} ."


# --------------------------------------------------------------------- #
# FILTER / BIND expression nodes
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Comparison:
    """A binary comparison such as ``?v < 3.0`` or ``?c >= 42``."""

    operator: str  # one of <, <=, >, >=, =, !=
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class BooleanExpression:
    """Logical conjunction/disjunction of sub-expressions (``&&`` / ``||``)."""

    operator: str  # "and" | "or"
    operands: Tuple["Expression", ...]


@dataclass(frozen=True)
class Negation:
    """Logical negation (``!expr``)."""

    operand: "Expression"


@dataclass(frozen=True)
class Arithmetic:
    """Binary arithmetic: ``+``, ``-``, ``*``, ``/``."""

    operator: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class FunctionCall:
    """Builtin call such as ``regex(str(?u), "BAR")``, ``if(...)``, ``bound(?x)``."""

    name: str
    arguments: Tuple["Expression", ...]


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call such as ``COUNT(?x)``, ``SUM(DISTINCT ?v)`` or ``COUNT(*)``.

    ``expression`` is ``None`` only for ``COUNT(*)``.
    """

    name: str  # one of count, sum, min, max, avg, sample
    expression: Optional["Expression"]
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.expression is None else str(self.expression)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({prefix}{inner})"


#: Expression nodes: constants, variables, or composite nodes above.
Expression = TypingUnion[
    URI,
    Literal,
    Variable,
    Comparison,
    BooleanExpression,
    Negation,
    Arithmetic,
    FunctionCall,
    Aggregate,
]


@dataclass(frozen=True)
class Filter:
    """A FILTER constraint applying to the enclosing group."""

    expression: Expression


@dataclass(frozen=True)
class Bind:
    """A BIND assignment ``BIND(expression AS ?variable)``."""

    expression: Expression
    variable: Variable


@dataclass
class BasicGraphPattern:
    """An ordered list of triple patterns."""

    patterns: List[TriplePattern] = field(default_factory=list)

    def variables(self) -> List[str]:
        """Distinct variable names across all patterns, in first-use order."""
        seen: List[str] = []
        for pattern in self.patterns:
            for name in pattern.variable_names():
                if name not in seen:
                    seen.append(name)
        return seen

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)


@dataclass
class Union:
    """A UNION of group graph patterns."""

    branches: List["GroupGraphPattern"] = field(default_factory=list)


@dataclass
class InlineData:
    """A ``VALUES`` block: an inline table of bindings joined with the group.

    ``rows`` holds one tuple per data row; ``None`` entries stand for
    ``UNDEF`` (the variable stays unbound in that row).
    """

    variables: List[Variable] = field(default_factory=list)
    rows: List[Tuple[Optional[PatternTerm], ...]] = field(default_factory=list)

    def variable_names(self) -> List[str]:
        """Names of the VALUES variables, in declaration order."""
        return [variable.name for variable in self.variables]


@dataclass
class GroupGraphPattern:
    """A WHERE-clause group: BGP + paths + filters + binds + unions + optionals + values."""

    bgp: BasicGraphPattern = field(default_factory=BasicGraphPattern)
    filters: List[Filter] = field(default_factory=list)
    binds: List[Bind] = field(default_factory=list)
    unions: List[Union] = field(default_factory=list)
    optionals: List["GroupGraphPattern"] = field(default_factory=list)
    values: List[InlineData] = field(default_factory=list)
    paths: List[PropertyPathPattern] = field(default_factory=list)

    def variables(self) -> List[str]:
        """All variable names bound in the group (BGP, paths, BINDs, UNION/OPTIONAL branches, VALUES)."""
        names = self.bgp.variables()
        for path in self.paths:
            for name in path.variable_names():
                if name not in names:
                    names.append(name)
        for bind in self.binds:
            if bind.variable.name not in names:
                names.append(bind.variable.name)
        for union in self.unions:
            for branch in union.branches:
                for name in branch.variables():
                    if name not in names:
                        names.append(name)
        for optional in self.optionals:
            for name in optional.variables():
                if name not in names:
                    names.append(name)
        for block in self.values:
            for name in block.variable_names():
                if name not in names:
                    names.append(name)
        return names


# --------------------------------------------------------------------- #
# solution modifiers and query forms
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SelectExpression:
    """A projection expression ``(expression AS ?variable)``.

    The expression may contain aggregates (``(COUNT(?x) AS ?c)``); plain
    variable projections are represented by :class:`Variable` directly.
    """

    expression: Expression
    variable: Variable


#: One item of a SELECT clause: a plain variable or ``(expr AS ?var)``.
ProjectionItem = TypingUnion[Variable, SelectExpression]


@dataclass(frozen=True)
class OrderCondition:
    """One ``ORDER BY`` key: an expression plus a direction."""

    expression: Expression
    descending: bool = False


@dataclass
class SelectQuery:
    """A parsed SELECT query.

    ``projection`` is ``None`` for ``SELECT *``; otherwise it lists plain
    variables and ``(expression AS ?var)`` items in clause order.  The
    solution modifiers follow the SPARQL 1.1 evaluation order: grouping and
    aggregation, then ``ORDER BY``, projection, ``DISTINCT``, ``OFFSET``
    and finally ``LIMIT``.
    """

    projection: Optional[List[ProjectionItem]]  # None means SELECT *
    where: GroupGraphPattern
    distinct: bool = False
    limit: Optional[int] = None
    offset: Optional[int] = None
    order_by: List[OrderCondition] = field(default_factory=list)
    group_by: List[Expression] = field(default_factory=list)

    def projected_names(self) -> List[str]:
        """Names of the projected variables (all bound variables for ``*``)."""
        if self.projection is None:
            return self.where.variables()
        names: List[str] = []
        for item in self.projection:
            name = item.name if isinstance(item, Variable) else item.variable.name
            if name not in names:
                names.append(name)
        return names

    def select_expressions(self) -> List[SelectExpression]:
        """The ``(expr AS ?var)`` items of the SELECT clause, in order."""
        if self.projection is None:
            return []
        return [item for item in self.projection if isinstance(item, SelectExpression)]

    @property
    def aggregated(self) -> bool:
        """Whether the query needs a grouping/aggregation phase."""
        if self.group_by:
            return True
        return any(
            contains_aggregate(item.expression) for item in self.select_expressions()
        )

    @property
    def triple_patterns(self) -> Sequence[TriplePattern]:
        """Triple patterns of the top-level BGP (convenience accessor)."""
        return self.where.bgp.patterns


@dataclass
class AskQuery:
    """A parsed ASK query: true iff the WHERE clause has at least one solution."""

    where: GroupGraphPattern


#: Any parsed query form.
Query = TypingUnion[SelectQuery, AskQuery]


def contains_aggregate(expression: Expression) -> bool:
    """Whether an expression tree contains an :class:`Aggregate` node."""
    if isinstance(expression, Aggregate):
        return True
    if isinstance(expression, (Comparison, Arithmetic)):
        return contains_aggregate(expression.left) or contains_aggregate(expression.right)
    if isinstance(expression, BooleanExpression):
        return any(contains_aggregate(operand) for operand in expression.operands)
    if isinstance(expression, Negation):
        return contains_aggregate(expression.operand)
    if isinstance(expression, FunctionCall):
        return any(contains_aggregate(argument) for argument in expression.arguments)
    return False
