"""Figure 12 — ``(?s, P, ?o)`` queries (constant predicate, both ends variable).

The answer-set sizes are the total number of triples per property, which the
paper plots on the x-axis; the columns below report the actual sizes produced
by the generator.
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.baselines.registry import SYSTEM_ORDER
from repro.bench.harness import format_table, query_latency_row


def test_fig12_single_tp_scan(benchmark, context, loaded_systems, results_dir):
    """Regenerate the Figure 12 series (?s,P,?o latency vs answer-set size)."""
    queries = [context.catalog.by_identifier()[f"S{i}"] for i in range(11, 16)]
    succinct = loaded_systems["SuccinctEdge"]
    sizes = [len(succinct.query(query.sparql, reasoning=False)) for query in queries]
    columns = [str(size) for size in sizes]

    rows = {}
    for system_name in SYSTEM_ORDER:
        system = loaded_systems[system_name]
        cells = []
        for query in queries:
            # Best-of-3 hot runs (the harness default and the paper's
            # Section 7.3.3 methodology): keeps one-off GC pauses from
            # polluting a cell.
            measurement = query_latency_row(system, query, reasoning=False)
            assert measurement is not None
            cells.append(measurement.total_ms)
        rows[system_name] = cells
    table = format_table(
        "Figure 12: single ?s,P,?o triple pattern (answer-set size per column)",
        columns,
        rows,
        unit="ms, measured + simulated",
    )
    record_table(results_dir, "fig12_single_tp_scan", table)

    benchmark.pedantic(lambda: succinct.query(queries[0].sparql), rounds=1, iterations=1)

    # The answer sets must span an increasing range, like the paper's x-axis.
    assert sizes[0] < sizes[-1]
    # Correctness cross-check: every system returns the same answer-set size.
    for query, expected_size in zip(queries, sizes):
        for system_name in SYSTEM_ORDER:
            system = loaded_systems[system_name]
            assert len(system.query(query.sparql, reasoning=False)) == expected_size
