"""Unit and property-based tests for the wavelet tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sds.wavelet_tree import WaveletTree


class TestConstruction:
    def test_empty_sequence(self):
        wt = WaveletTree([])
        assert len(wt) == 0
        assert wt.to_list() == []
        assert wt.count(0) == 0
        assert wt.rank(0, 0) == 0

    def test_paper_example_sequence(self):
        # The ABFECBCCADEF example of Figure 3 of the paper (A=0 ... F=5).
        sequence = [0, 1, 5, 4, 2, 1, 2, 2, 0, 3, 4, 5]
        wt = WaveletTree(sequence)
        assert wt.to_list() == sequence
        assert wt.count(2) == 3
        assert wt.rank(8, 2) == 3
        assert wt.select(2, 2) == 6

    def test_single_symbol_alphabet(self):
        wt = WaveletTree([0, 0, 0, 0])
        assert wt.to_list() == [0, 0, 0, 0]
        assert wt.rank(3, 0) == 3
        assert wt.select(4, 0) == 3

    def test_explicit_alphabet_size(self):
        wt = WaveletTree([1, 3], alphabet_size=10)
        assert wt.alphabet_size == 10
        assert wt.count(7) == 0
        assert wt.rank(2, 9) == 0

    def test_symbol_outside_alphabet_raises(self):
        with pytest.raises(ValueError):
            WaveletTree([5], alphabet_size=3)

    def test_negative_symbol_raises(self):
        with pytest.raises(ValueError):
            WaveletTree([-1])

    def test_repr(self):
        assert "WaveletTree" in repr(WaveletTree([1, 2, 3]))


class TestAccess:
    def test_access_round_trip(self):
        sequence = [4, 1, 3, 3, 0, 2, 4, 4, 1]
        wt = WaveletTree(sequence)
        for index, expected in enumerate(sequence):
            assert wt.access(index) == expected
            assert wt[index] == expected

    def test_access_out_of_range(self):
        wt = WaveletTree([1, 2])
        with pytest.raises(IndexError):
            wt.access(2)


class TestRankSelect:
    SEQUENCE = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]

    def test_rank_matches_prefix_count(self):
        wt = WaveletTree(self.SEQUENCE)
        for index in range(len(self.SEQUENCE) + 1):
            for symbol in set(self.SEQUENCE):
                assert wt.rank(index, symbol) == self.SEQUENCE[:index].count(symbol)

    def test_rank_unknown_symbol_is_zero(self):
        wt = WaveletTree(self.SEQUENCE)
        assert wt.rank(10, 1000) == 0

    def test_select_finds_nth_occurrence(self):
        wt = WaveletTree(self.SEQUENCE)
        for symbol in set(self.SEQUENCE):
            positions = [i for i, v in enumerate(self.SEQUENCE) if v == symbol]
            for occurrence, expected in enumerate(positions, start=1):
                assert wt.select(occurrence, symbol) == expected

    def test_select_too_many_occurrences_raises(self):
        wt = WaveletTree(self.SEQUENCE)
        with pytest.raises(ValueError):
            wt.select(10, 3)

    def test_select_non_positive_occurrence_raises(self):
        wt = WaveletTree(self.SEQUENCE)
        with pytest.raises(ValueError):
            wt.select(0, 3)

    def test_count(self):
        wt = WaveletTree(self.SEQUENCE)
        assert wt.count(5) == 3
        assert wt.count(1000) == 0


class TestRangeSearch:
    SEQUENCE = [7, 2, 7, 1, 7, 3, 2, 7, 0, 7, 2, 5]

    def test_range_search_returns_positions_in_order(self):
        wt = WaveletTree(self.SEQUENCE)
        assert wt.range_search(0, len(self.SEQUENCE), 7) == [0, 2, 4, 7, 9]
        assert wt.range_search(2, 9, 7) == [2, 4, 7]
        assert wt.range_search(3, 4, 7) == []

    def test_range_search_clamps_bounds(self):
        wt = WaveletTree(self.SEQUENCE)
        assert wt.range_search(-5, 100, 0) == [8]
        assert wt.range_search(10, 2, 7) == []

    def test_count_in_range(self):
        wt = WaveletTree(self.SEQUENCE)
        assert wt.count_in_range(2, 9, 7) == 3
        assert wt.count_in_range(0, 0, 7) == 0

    def test_range_search_symbols_reports_interval_matches(self):
        wt = WaveletTree(self.SEQUENCE)
        expected = sorted(
            (i, v) for i, v in enumerate(self.SEQUENCE) if 2 <= v < 6 and 1 <= i < 11
        )
        assert wt.range_search_symbols(1, 11, 2, 6) == expected

    def test_range_search_symbols_empty_interval(self):
        wt = WaveletTree(self.SEQUENCE)
        assert wt.range_search_symbols(0, 12, 6, 6) == []
        assert wt.range_search_symbols(5, 5, 0, 8) == []

    def test_count_symbols_in_range(self):
        wt = WaveletTree(self.SEQUENCE)
        expected = sum(1 for i, v in enumerate(self.SEQUENCE) if 2 <= v < 6 and 1 <= i < 11)
        assert wt.count_symbols_in_range(1, 11, 2, 6) == expected


class TestSizeAccounting:
    def test_size_in_bytes_positive_for_nonempty(self):
        assert WaveletTree([1, 2, 3, 4]).size_in_bytes() > 0

    def test_size_grows_with_sequence(self):
        small = WaveletTree(list(range(16)) * 2)
        large = WaveletTree(list(range(16)) * 200)
        assert large.size_in_bytes() > small.size_in_bytes()


@settings(max_examples=50, deadline=None)
@given(sequence=st.lists(st.integers(min_value=0, max_value=40), max_size=300))
def test_property_access_reconstructs_sequence(sequence):
    wt = WaveletTree(sequence)
    assert wt.to_list() == sequence


@settings(max_examples=50, deadline=None)
@given(
    sequence=st.lists(st.integers(min_value=0, max_value=25), min_size=1, max_size=200),
    data=st.data(),
)
def test_property_rank_select_consistency(sequence, data):
    wt = WaveletTree(sequence)
    symbol = data.draw(st.sampled_from(sequence))
    index = data.draw(st.integers(min_value=0, max_value=len(sequence)))
    assert wt.rank(index, symbol) == sequence[:index].count(symbol)
    occurrences = sequence.count(symbol)
    occurrence = data.draw(st.integers(min_value=1, max_value=occurrences))
    expected_position = [i for i, v in enumerate(sequence) if v == symbol][occurrence - 1]
    assert wt.select(occurrence, symbol) == expected_position


@settings(max_examples=40, deadline=None)
@given(
    sequence=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=150),
    low=st.integers(min_value=0, max_value=30),
    span=st.integers(min_value=0, max_value=15),
)
def test_property_symbol_range_report_matches_bruteforce(sequence, low, span):
    wt = WaveletTree(sequence)
    high = low + span
    expected = sorted((i, v) for i, v in enumerate(sequence) if low <= v < high)
    assert wt.range_search_symbols(0, len(sequence), low, high) == expected
    assert wt.count_symbols_in_range(0, len(sequence), low, high) == len(expected)
