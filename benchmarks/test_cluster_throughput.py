"""Cluster scaling smoke: queries/sec vs replica count over the HTTP tier.

A :class:`~repro.serve.cluster.ClusterQueryEngine` replays a fixed slice of
the paper workload against 1, 2 and 4 HTTP replicas that bootstrapped from
the primary's shipped image, and the sustained throughput lands in a
replica-count scaling table under ``benchmarks/results/``.

**Methodology (read before quoting the numbers).**  This is a *smoke*, not
a scaling claim: every replica is a thread-backed HTTP server on the same
single-core CPython host, so adding replicas adds no compute — what the
table shows is the coordination overhead of the scatter-gather tier
(epoch pinning, per-unit HTTP round trips, windowed gathers) staying
bounded as the fan-out widens, plus a sequential in-process engine as the
zero-network control.  On real hardware each replica owns a core or a
machine and the replica columns turn into genuine capacity; the loopback
numbers here are only good for catching regressions in the coordinator's
per-unit cost.
"""

from __future__ import annotations

import time

from repro.bench.harness import format_table, record_table
from repro.query.engine import QueryEngine
from repro.serve.cluster import (
    ClusterQueryEngine,
    ClusterReplica,
    HttpReplicationClient,
    ReplicaSet,
    ReplicationSource,
)
from repro.serve.server import QueryServer
from repro.serve.service import QueryService
from repro.store.sharding import ShardedStore

_REPLICA_COUNTS = (1, 2, 4)

#: One representative slice per query family — enough traffic to amortise
#: connection setup without pushing the smoke into the minutes range.
_WORKLOAD = ("S1", "S4", "S9", "M1", "M2", "R2", "R5", "A4")


def _replay(engine, queries) -> float:
    started = time.perf_counter()
    for query in queries:
        result = engine.execute(query.sparql)
        if hasattr(result, "to_tuples"):
            result.to_tuples()
    return time.perf_counter() - started


def test_cluster_throughput_scaling(context, results_dir, tmp_path):
    catalog = context.catalog.by_identifier()
    queries = [catalog[identifier] for identifier in _WORKLOAD]
    store = ShardedStore.from_graph(
        context.full_graph, ontology=context.lubm.ontology, shards=4, updatable=True
    )
    source = ReplicationSource(store, workspace=str(tmp_path / "ship"))
    primary = QueryServer(QueryService(store), routes=source.routes()).start()

    sequential = QueryEngine(store, reasoning=True)
    baseline_elapsed = _replay(sequential, queries)

    rows = {}
    rows["sequential (in-process)"] = [round(len(queries) / baseline_elapsed, 2)] + [
        None
    ] * (len(_REPLICA_COUNTS) - 1)
    replicas = []
    servers = []
    try:
        for count in _REPLICA_COUNTS:
            while len(replicas) < count:
                index = len(replicas)
                replica = ClusterReplica(
                    HttpReplicationClient(primary.url),
                    str(tmp_path / f"replica{index}"),
                ).bootstrap()
                replicas.append(replica)
                servers.append(replica.serve())
            replica_set = ReplicaSet([server.url for server in servers[:count]])
            engine = ClusterQueryEngine(store, replica_set, source, reasoning=True)
            try:
                elapsed = _replay(engine, queries)
            finally:
                engine.close()
                replica_set.close()
            label = f"cluster ({count} replica{'s' if count > 1 else ''})"
            cells = [None] * len(_REPLICA_COUNTS)
            cells[_REPLICA_COUNTS.index(count)] = round(len(queries) / elapsed, 2)
            rows[label] = cells
        table = format_table(
            "Cluster throughput vs replica count (single-core loopback smoke)",
            [f"{count} replicas" for count in _REPLICA_COUNTS],
            rows,
            unit="queries/sec",
        )
        record_table(results_dir, "cluster_throughput", table)
    finally:
        for server in servers:
            server.service.close()
            server.stop()
        primary.service.close()
        primary.stop()
        source.close()
