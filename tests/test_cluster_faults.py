"""Fault injection for the cluster: kills, partitions, lag and deadlines.

What the distributed tier must guarantee under failure, each proven here:

* a replica killed (or dropping packets) mid-query triggers failover to a
  peer and the query still returns **full, byte-identical rows** — or,
  with no peer left, a clean :class:`~repro.serve.cluster.ClusterError`;
  never partial rows;
* a partitioned replica is excluded by the health checks, receives no
  work while down, and **re-converges through suffix replay** (not a
  re-bootstrap) once the link heals;
* a replica lagging behind the pinned epoch never serves a stale read —
  it syncs forward on demand, refuses with 503 when it cannot reach the
  primary, and answers 409 when asked for a position it has moved past;
* the coordinator's deadline is respected under a slow replica:
  :class:`~repro.serve.cluster.ClusterTimeout` fires near the deadline
  and is never retried.

Faults are injected through :class:`~repro.edge.device.SimulatedNetwork`
(partition / drop-next knobs on every hop) and by stopping replica
servers outright.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

import pytest

from repro.edge.device import LOCAL_LAN, NetworkProfile, SimulatedNetwork
from repro.query.engine import QueryEngine
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Triple
from repro.serve.cluster import (
    ClusterError,
    ClusterQueryEngine,
    ClusterReplica,
    ClusterTimeout,
    EpochConflict,
    HttpReplicationClient,
    ReplicaSet,
    ReplicaUnavailable,
    ReplicationSource,
)
from repro.serve.server import QueryServer
from repro.serve.service import QueryService
from repro.sparql.bindings import AskResult
from repro.store.sharding import ShardedStore


def _rows(result):
    if isinstance(result, AskResult):
        return result.boolean
    return (result.variables, result.to_tuples())


@pytest.fixture()
def harness(small_lubm, tmp_path):
    """A 2-replica cluster with a simulated network on every hop.

    ``coordinator_links[i]`` sits on the coordinator→replica-``i`` hop;
    ``replication_links[i]`` on replica ``i``'s pull path to the primary.
    Function-scoped: every test gets pristine links and health state.
    """
    store = ShardedStore.from_graph(
        small_lubm.graph, ontology=small_lubm.ontology, shards=4, updatable=True
    )
    source = ReplicationSource(store, workspace=str(tmp_path / "ship"))
    primary = QueryServer(QueryService(store), routes=source.routes()).start()
    replication_links = [SimulatedNetwork(LOCAL_LAN), SimulatedNetwork(LOCAL_LAN)]
    replicas = [
        ClusterReplica(
            HttpReplicationClient(primary.url, network=replication_links[index]),
            str(tmp_path / f"replica{index}"),
        ).bootstrap()
        for index in range(2)
    ]
    servers = [replica.serve() for replica in replicas]
    coordinator_links = [SimulatedNetwork(LOCAL_LAN), SimulatedNetwork(LOCAL_LAN)]
    replica_set = ReplicaSet(
        [server.url for server in servers],
        networks=coordinator_links,
        hedge_after_s=0.2,
    )
    state = SimpleNamespace(
        store=store,
        source=source,
        primary=primary,
        replicas=replicas,
        servers=servers,
        replica_set=replica_set,
        coordinator_links=coordinator_links,
        replication_links=replication_links,
    )
    yield state
    replica_set.close()
    for server in servers:
        server.service.close()
        server.stop()
    primary.service.close()
    primary.stop()
    source.close()


def _engine(harness, **kwargs) -> ClusterQueryEngine:
    kwargs.setdefault("batch_size", 7)
    return ClusterQueryEngine(
        harness.store, harness.replica_set, harness.source, **kwargs
    )


def _expected(harness, sparql: str, reasoning: bool = True):
    return _rows(QueryEngine(harness.store, reasoning=reasoning).execute(sparql))


QUERY = "M2"  # multi-pattern: leaf scatter + several bind-join batches


def test_dropped_packets_fail_over_to_peer(harness, small_lubm_catalog):
    """Units lost on one link mid-query fail over; rows stay complete."""
    query = small_lubm_catalog.by_identifier()[QUERY]
    expected = _expected(harness, query.sparql, query.requires_reasoning)
    # Drop the next packet on the replica-0 hop: the first unit that hits it
    # dies mid-query, replica 0 is marked down, and its peer serves the rest.
    # (One drop is all the link gets — once marked down the replica receives
    # no more traffic, so a longer burst would survive into the health probe.)
    harness.coordinator_links[0].drop_next(1)
    engine = _engine(harness, reasoning=query.requires_reasoning)
    try:
        assert _rows(engine.execute(query.sparql)) == expected
    finally:
        engine.close()
    info = harness.replica_set.info()
    assert harness.coordinator_links[0].drops >= 1
    assert not info["healthy"][0]  # excluded after the transport failure
    # Health refresh readmits it (the link only dropped a burst, it is up).
    assert harness.replica_set.refresh_health() == [True, True]


def test_killed_replica_fails_over_or_errors_cleanly(harness, small_lubm_catalog):
    """A dead replica server: peer serves full rows; no peer → clean error."""
    query = small_lubm_catalog.by_identifier()[QUERY]
    expected = _expected(harness, query.sparql, query.requires_reasoning)
    harness.servers[0].stop()  # SIGKILL equivalent: the socket goes away
    engine = _engine(harness, reasoning=query.requires_reasoning)
    try:
        assert _rows(engine.execute(query.sparql)) == expected
        assert not harness.replica_set.info()["healthy"][0]
    finally:
        engine.close()
    # Now kill the last replica too: the query must raise a ClusterError —
    # materialized execution means the caller gets an exception, never a
    # partially filled result.
    harness.servers[1].stop()
    engine = _engine(harness, reasoning=query.requires_reasoning)
    try:
        with pytest.raises(ClusterError):
            engine.execute(query.sparql)
    finally:
        engine.close()


def test_partitioned_replica_excluded_then_reconverges(harness, small_lubm_catalog):
    """Partition → health exclusion → heal → suffix-replay re-convergence."""
    query = small_lubm_catalog.by_identifier()[QUERY]
    expected = _expected(harness, query.sparql, query.requires_reasoning)
    harness.coordinator_links[0].partition()
    engine = _engine(harness, reasoning=query.requires_reasoning)
    try:
        assert _rows(engine.execute(query.sparql)) == expected
        assert harness.replica_set.refresh_health() == [False, True]
        served_while_down = harness.replica_set.info()["dispatches"][0]
        # More queries while partitioned: replica 0 receives nothing.
        assert _rows(engine.execute(query.sparql)) == expected
        assert harness.replica_set.info()["dispatches"][0] == served_while_down
    finally:
        engine.close()
    # Heal the link and write through the primary: the replica re-converges
    # by replaying the missed log suffix, never by re-bootstrapping.
    harness.coordinator_links[0].heal()
    assert harness.replica_set.refresh_health() == [True, True]
    EX = Namespace("http://example.org/cluster-fault/")
    inserted = [
        Triple(EX[f"s{i}"], EX["links"], EX[f"o{i}"]) for i in range(5)
    ]
    for triple in inserted:
        assert harness.store.insert(triple)
    expected_ask = _expected(
        harness, f"ASK {{ <{EX['s0'].value}> <{EX['links'].value}> ?o }}"
    )
    engine = _engine(harness)
    try:
        bootstraps_before = harness.replicas[0].bootstraps
        # Pin lands at the post-write epoch; replica 0 must catch up to serve.
        assert (
            _rows(engine.execute(f"ASK {{ <{EX['s0'].value}> <{EX['links'].value}> ?o }}"))
            == expected_ask
        )
        generation, epoch = harness.source.position()
        # Force replica 0 all the way forward and check how it got there.
        harness.replicas[0].sync(upto_epoch=epoch)
        assert (harness.replicas[0].generation, harness.replicas[0].epoch) == (
            generation,
            epoch,
        )
        assert harness.replicas[0].bootstraps == bootstraps_before  # replay, not re-image
    finally:
        engine.close()
    for triple in inserted:  # restore the dataset for any later assertions
        assert harness.store.delete(triple)


def test_lagging_replica_never_serves_stale_rows(harness, small_lubm_catalog):
    """A replica that cannot catch up refuses (503/409); a peer serves fresh."""
    query = small_lubm_catalog.by_identifier()[QUERY]
    # Converge both replicas onto the current position first.
    generation, epoch = harness.source.position()
    for replica in harness.replicas:
        replica.sync(upto_epoch=epoch)
    # Cut replica 0 off from the primary, then advance the primary.
    harness.replication_links[0].partition()
    EX = Namespace("http://example.org/cluster-lag/")
    inserted = [Triple(EX[f"s{i}"], EX["links"], EX[f"o{i}"]) for i in range(3)]
    for triple in inserted:
        assert harness.store.insert(triple)
    new_generation, new_epoch = harness.source.position()
    assert new_epoch > epoch
    # Asked for the fresh position, the lagging replica refuses outright —
    # it cannot reach the primary to catch up, so it must NOT answer from
    # its stale state.
    with pytest.raises(ReplicaUnavailable):
        harness.replicas[0].handle_op("ping", (), True, new_generation, new_epoch)
    assert harness.replicas[0].epoch == epoch  # still lagging, untouched
    # The full query path: the coordinator pins the fresh epoch; replica 0
    # 503s, fails over, and the peer serves rows that include the new data.
    expected = _expected(harness, query.sparql, query.requires_reasoning)
    expected_ask = _expected(
        harness, f"ASK {{ <{EX['s0'].value}> <{EX['links'].value}> ?o }}"
    )
    assert expected_ask is True
    engine = _engine(harness, reasoning=query.requires_reasoning)
    try:
        assert _rows(engine.execute(query.sparql)) == expected
        assert (
            _rows(engine.execute(f"ASK {{ <{EX['s0'].value}> <{EX['links'].value}> ?o }}"))
            == expected_ask
        )
    finally:
        engine.close()
    # Heal and catch up; then ask for a position the replica has moved past:
    # 409 (EpochConflict), the re-pin-and-retry signal — still never rows.
    harness.replication_links[0].heal()
    harness.replicas[0].sync(upto_epoch=new_epoch)
    with pytest.raises(EpochConflict):
        harness.replicas[0].handle_op("ping", (), True, new_generation, new_epoch - 1)
    for triple in inserted:
        assert harness.store.delete(triple)


def test_deadline_respected_under_slow_replica(small_lubm, tmp_path):
    """A slow link cannot stretch a query past the coordinator's deadline."""
    store = ShardedStore.from_graph(
        small_lubm.graph, ontology=small_lubm.ontology, shards=4, updatable=True
    )
    source = ReplicationSource(store, workspace=str(tmp_path / "ship"))
    primary = QueryServer(QueryService(store), routes=source.routes()).start()
    replica = ClusterReplica(
        HttpReplicationClient(primary.url), str(tmp_path / "replica")
    ).bootstrap()
    server = replica.serve()
    # 300 ms RTT on the only replica's hop: every unit costs ≥ 150 ms on the
    # request leg alone, so a 0.25 s deadline dies inside the first batches.
    slow = SimulatedNetwork(NetworkProfile(name="slow", rtt_ms=300.0, bandwidth_kbps=0.0))
    replica_set = ReplicaSet([server.url], networks=[slow], hedge_after_s=0.05)
    engine = ClusterQueryEngine(
        store, replica_set, source, batch_size=7, deadline_s=0.25
    )
    try:
        started = time.perf_counter()
        with pytest.raises(ClusterTimeout):
            engine.execute(
                "SELECT ?s ?o WHERE { ?s <http://swat.cse.lehigh.edu/onto/univ-bench.owl#memberOf> ?o }"
            )
        elapsed = time.perf_counter() - started
        # Respected means: aborted near the deadline (one in-flight unit of
        # slack), not after stubbornly draining every slow round trip.
        assert elapsed < 2.5
    finally:
        engine.close()
        replica_set.close()
        server.service.close()
        server.stop()
        primary.service.close()
        primary.stop()
        source.close()
