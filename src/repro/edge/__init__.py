"""Edge-deployment simulation.

The paper deploys SuccinctEdge on IoT devices (Raspberry Pi class) that each
receive a flow of measurement graphs and evaluate a fixed set of SPARQL
queries once per graph instance, raising alerts towards a central
administration server when anomalies are detected (Sections 2 and 4).

* :mod:`repro.edge.device` — a resource model of the edge device (memory
  budget, relative CPU speed, energy accounting);
* :mod:`repro.edge.stream` — the graph-instance stream processors: the
  paper's rebuild-per-instance mode and the live-update mode where readings
  are ingested as delta inserts into one updatable store
  (``docs/update_lifecycle.md``);
* :mod:`repro.edge.alerts` — alert objects, detection rules and the sink that
  stands in for the central administration server.
"""

from repro.edge.alerts import Alert, AlertSink, AnomalyRule
from repro.edge.device import DeviceProfile, EdgeDevice, RASPBERRY_PI_3B_PLUS
from repro.edge.server import AdministrationServer, OntologyBundle, RegisteredDevice
from repro.edge.stream import (
    GraphStreamProcessor,
    LiveStreamProcessor,
    LiveStreamStatistics,
    StreamStatistics,
)

__all__ = [
    "AdministrationServer",
    "Alert",
    "AlertSink",
    "AnomalyRule",
    "DeviceProfile",
    "EdgeDevice",
    "GraphStreamProcessor",
    "LiveStreamProcessor",
    "LiveStreamStatistics",
    "OntologyBundle",
    "RASPBERRY_PI_3B_PLUS",
    "RegisteredDevice",
    "StreamStatistics",
]
