"""Persistence of a SuccinctEdge store: compact v3 files and mmap v4 images.

The paper's storage evaluation (Section 7.3.2) "persisted all the data
structures existing in SuccinctEdge to disk in order to make a fair
comparison" with the disk-based systems, and its deployment model has the
central server broadcast pre-encoded dictionaries to the edge devices.  This
module provides:

* :func:`save_store` / :func:`load_store` — serialise a complete
  :class:`~repro.store.succinct_edge.SuccinctEdge` instance and restore it
  (``load_store`` sniffs the format version, so it reads both v3 files and
  v4 images);
* :func:`save_store_image` / :func:`dump_store_image` — the **v4 store
  image** writer (page-aligned zero-copy layout, see below);
* :func:`upgrade_store_image` — rewrite a v3 file as a v4 image;
* :func:`serialized_size_in_bytes` — the v3 on-disk size, used as the
  ground-truth measurement behind Figures 9 and 10.

Two formats coexist (see ``docs/persistence.md`` for the full layout):

* **v3** is compact and layout-independent: a small header followed by
  varint-encoded sections (dictionaries, schema, and the encoded triples of
  the three layouts).  The SDS layouts are *rebuilt from the triples at load
  time*, so a v3 load re-encodes the whole dataset — cheap to write, small
  on disk, O(triples) to open.
* **v4** is the mmap-backed store image (the default load path for anything
  saved with :func:`save_store_image`): bitvector words, rank blocks, select
  directories, wavelet-tree node bitmaps, packed int-sequences and the
  sorted rdf:type pair buffers are written verbatim as aligned sections
  behind a fixed header plus a table of contents.  :func:`load_store` maps
  the file and hands read-only ``memoryview`` slices straight to the SDS
  kernels — **no per-triple decode happens**, so cold-start cost is
  independent of the triple count.  Only the small decoded section
  (dictionaries, schema, statistics, structural manifest) is parsed.
"""

from __future__ import annotations

import io
import mmap as _mmaplib
import os
import struct
import zlib
from array import array
from typing import BinaryIO, Dict, List, Optional, Tuple

from repro.ontology.litemat import EncodedEntity, LiteMatEncoding
from repro.ontology.schema import OntologySchema
from repro.rdf.terms import BlankNode, Literal, Term, URI
from repro.sds.bitvector import BitVector
from repro.sds.int_sequence import IntSequence
from repro.sds.kernels import words_view
from repro.sds.rbtree import FrozenPairTree
from repro.sds.wavelet_tree import WaveletTree

_MAGIC = b"SEDG"
# Version 3 added the dictionary overflow tables (live-inserted terms whose
# identifiers live above the LiteMat space, see docs/update_lifecycle.md).
_VERSION = 3

# Version 4: the mmap-backed zero-copy store image.  The version field stays
# a little-endian u16 at byte offset 4, exactly where v3 keeps it, so version
# sniffing (and corruption detection) works uniformly across formats.
_V4_VERSION = 4
_V4_PAGE = 4096
#: Fixed 64-byte v4 header: magic, version, flags, page size, section count,
#: TOC offset, meta offset, meta length, file length, checksum (CRC-32 of
#: TOC + meta, zero-extended to u64), reserved.
_V4_HEADER = struct.Struct("<4sHHIIQQQQQQ")
_V4_TOC_ENTRY = struct.Struct("<QQ")

_TERM_URI = 0
_TERM_BNODE = 1
_TERM_LITERAL = 2


class PersistenceError(RuntimeError):
    """Raised when a file cannot be parsed as a persisted SuccinctEdge store."""


# --------------------------------------------------------------------------- #
# low-level encoding helpers
# --------------------------------------------------------------------------- #


def _write_varint(buffer: BinaryIO, value: int) -> None:
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buffer.write(bytes([byte | 0x80]))
        else:
            buffer.write(bytes([byte]))
            return


def _read_varint(buffer: BinaryIO) -> int:
    shift = 0
    result = 0
    while True:
        raw = buffer.read(1)
        if not raw:
            raise PersistenceError("unexpected end of file while reading a varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7


def _write_text(buffer: BinaryIO, text: str) -> None:
    payload = text.encode("utf-8")
    _write_varint(buffer, len(payload))
    buffer.write(payload)


def _read_text(buffer: BinaryIO) -> str:
    length = _read_varint(buffer)
    payload = buffer.read(length)
    if len(payload) != length:
        raise PersistenceError("unexpected end of file while reading a string")
    return payload.decode("utf-8")


def _write_term(buffer: BinaryIO, term: Term) -> None:
    if isinstance(term, URI):
        buffer.write(bytes([_TERM_URI]))
        _write_text(buffer, term.value)
    elif isinstance(term, BlankNode):
        buffer.write(bytes([_TERM_BNODE]))
        _write_text(buffer, term.label)
    elif isinstance(term, Literal):
        buffer.write(bytes([_TERM_LITERAL]))
        _write_text(buffer, term.lexical)
        _write_text(buffer, term.datatype or "")
        _write_text(buffer, term.language or "")
    else:  # pragma: no cover - defensive
        raise PersistenceError(f"cannot serialise term {term!r}")


def _read_term(buffer: BinaryIO) -> Term:
    kind_raw = buffer.read(1)
    if not kind_raw:
        raise PersistenceError("unexpected end of file while reading a term")
    kind = kind_raw[0]
    if kind == _TERM_URI:
        return URI(_read_text(buffer))
    if kind == _TERM_BNODE:
        return BlankNode(_read_text(buffer))
    if kind == _TERM_LITERAL:
        lexical = _read_text(buffer)
        datatype = _read_text(buffer) or None
        language = _read_text(buffer) or None
        if language:
            return Literal(lexical, language=language)
        return Literal(lexical, datatype=datatype)
    raise PersistenceError(f"unknown term tag {kind}")


# --------------------------------------------------------------------------- #
# sections
# --------------------------------------------------------------------------- #


def _write_litemat(buffer: BinaryIO, encoding: LiteMatEncoding) -> None:
    _write_varint(buffer, encoding.total_length)
    _write_varint(buffer, 1 if encoding.root is not None else 0)
    if encoding.root is not None:
        _write_term(buffer, encoding.root)
    terms = encoding.terms()
    _write_varint(buffer, len(terms))
    for term in terms:
        entry = encoding.entry(term)
        _write_term(buffer, term)
        _write_varint(buffer, entry.identifier)
        _write_varint(buffer, entry.local_length)


def _read_litemat(buffer: BinaryIO) -> LiteMatEncoding:
    total_length = _read_varint(buffer)
    has_root = _read_varint(buffer)
    root = _read_term(buffer) if has_root else None
    count = _read_varint(buffer)
    entries: Dict[URI, EncodedEntity] = {}
    for _ in range(count):
        term = _read_term(buffer)
        identifier = _read_varint(buffer)
        local_length = _read_varint(buffer)
        entries[term] = EncodedEntity(  # type: ignore[index]
            identifier=identifier, local_length=local_length, total_length=total_length
        )
    return LiteMatEncoding(entries, total_length, root=root)  # type: ignore[arg-type]


def _write_schema(buffer: BinaryIO, schema: OntologySchema) -> None:
    concept_edges = [(child, schema.concept_parent(child)) for child in schema.concepts]
    property_edges = [(child, schema.property_parent(child)) for child in schema.properties]
    domains = [(prop, schema.domain_of(prop)) for prop in schema.properties if schema.domain_of(prop)]
    ranges = [(prop, schema.range_of(prop)) for prop in schema.properties if schema.range_of(prop)]

    _write_varint(buffer, len(concept_edges))
    for child, parent in concept_edges:
        _write_term(buffer, child)
        _write_varint(buffer, 1 if parent is not None else 0)
        if parent is not None:
            _write_term(buffer, parent)
    _write_varint(buffer, len(property_edges))
    for child, parent in property_edges:
        _write_term(buffer, child)
        _write_varint(buffer, 1 if parent is not None else 0)
        if parent is not None:
            _write_term(buffer, parent)
    _write_varint(buffer, len(domains))
    for prop, concept in domains:
        _write_term(buffer, prop)
        _write_term(buffer, concept)  # type: ignore[arg-type]
    _write_varint(buffer, len(ranges))
    for prop, concept in ranges:
        _write_term(buffer, prop)
        _write_term(buffer, concept)  # type: ignore[arg-type]


def _read_schema(buffer: BinaryIO) -> OntologySchema:
    schema = OntologySchema()
    concept_count = _read_varint(buffer)
    for _ in range(concept_count):
        child = _read_term(buffer)
        has_parent = _read_varint(buffer)
        if has_parent:
            schema.add_subclass(child, _read_term(buffer))  # type: ignore[arg-type]
        else:
            schema.add_concept(child)  # type: ignore[arg-type]
    property_count = _read_varint(buffer)
    for _ in range(property_count):
        child = _read_term(buffer)
        has_parent = _read_varint(buffer)
        if has_parent:
            schema.add_subproperty(child, _read_term(buffer))  # type: ignore[arg-type]
        else:
            schema.add_property(child)  # type: ignore[arg-type]
    domain_count = _read_varint(buffer)
    for _ in range(domain_count):
        schema.add_domain(_read_term(buffer), _read_term(buffer))  # type: ignore[arg-type]
    range_count = _read_varint(buffer)
    for _ in range(range_count):
        schema.add_range(_read_term(buffer), _read_term(buffer))  # type: ignore[arg-type]
    return schema


# --------------------------------------------------------------------------- #
# shared decoded sections (dictionaries + schema), used by both v3 and v4
# --------------------------------------------------------------------------- #


def _write_dictionary_sections(buffer: BinaryIO, store) -> None:
    """Schema, LiteMat encodings, overflow tables, instances and counters."""
    _write_schema(buffer, store.schema)
    _write_litemat(buffer, store.concepts.encoding)
    _write_litemat(buffer, store.properties.encoding)

    # Overflow tables: terms inserted live after encoding time carry
    # identifiers above the LiteMat space; the persisted triples reference
    # them, so they are saved next to the encodings.
    for dictionary in (store.concepts, store.properties):
        entries = dictionary.overflow_entries()
        _write_varint(buffer, len(entries))
        for term, identifier in sorted(entries.items(), key=lambda item: item[1]):
            _write_term(buffer, term)
            _write_varint(buffer, identifier)

    # Instance dictionary: identifiers are dense and start at 1, but the
    # occurrence counters matter for the optimizer, so both are persisted.
    instance_ids = sorted(store.instances.identifiers())
    _write_varint(buffer, len(instance_ids))
    for identifier in instance_ids:
        _write_term(buffer, store.instances.extract(identifier))
        _write_varint(buffer, identifier)
        _write_varint(buffer, store.instances.occurrences(identifier))

    # Occurrence counters of the concept / property dictionaries.
    for dictionary in (store.concepts, store.properties):
        identifiers = [i for i in dictionary.identifiers() if dictionary.occurrences(i)]
        _write_varint(buffer, len(identifiers))
        for identifier in identifiers:
            _write_varint(buffer, identifier)
            _write_varint(buffer, dictionary.occurrences(identifier))


def _read_dictionary_sections(buffer: BinaryIO):
    """Inverse of :func:`_write_dictionary_sections`."""
    from repro.dictionary.term_dictionary import (
        ConceptDictionary,
        InstanceDictionary,
        PropertyDictionary,
    )

    schema = _read_schema(buffer)
    concepts = ConceptDictionary(_read_litemat(buffer))
    properties = PropertyDictionary(_read_litemat(buffer))

    for dictionary in (concepts, properties):
        overflow_count = _read_varint(buffer)
        for _ in range(overflow_count):
            term = _read_term(buffer)
            identifier = _read_varint(buffer)
            dictionary.restore_overflow(term, identifier)  # type: ignore[arg-type]

    instances = InstanceDictionary()
    instance_count = _read_varint(buffer)
    pending_occurrences: List[Tuple[int, int]] = []
    for _ in range(instance_count):
        term = _read_term(buffer)
        identifier = _read_varint(buffer)
        occurrences = _read_varint(buffer)
        assigned = instances.add(term)
        if assigned != identifier:
            raise PersistenceError(
                f"instance identifier mismatch for {term}: stored {identifier}, assigned {assigned}"
            )
        pending_occurrences.append((identifier, occurrences))
    for identifier, occurrences in pending_occurrences:
        if occurrences:
            instances.record_occurrence(identifier, occurrences)

    for dictionary in (concepts, properties):
        count = _read_varint(buffer)
        for _ in range(count):
            identifier = _read_varint(buffer)
            occurrences = _read_varint(buffer)
            dictionary.record_occurrence(identifier, occurrences)

    return schema, concepts, properties, instances


# --------------------------------------------------------------------------- #
# public API — v3 (compact, rebuild-at-load)
# --------------------------------------------------------------------------- #


def dump_store(store) -> bytes:
    """Serialise a SuccinctEdge store into a compact (v3) byte string.

    This remains the Figures 9/10 size-measurement format: triples are
    varint-encoded and the SDS layouts are rebuilt at load time.  Use
    :func:`dump_store_image` for the zero-copy v4 image instead.
    """
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(struct.pack("<H", _VERSION))

    _write_dictionary_sections(buffer, store)

    # rdf:type triples.
    type_triples = list(store.type_store.iter_triples())
    _write_varint(buffer, len(type_triples))
    for subject_id, concept_id in type_triples:
        _write_varint(buffer, subject_id)
        _write_varint(buffer, concept_id)

    # Object-property triples.
    object_triples = list(store.object_store.iter_triples())
    _write_varint(buffer, len(object_triples))
    for property_id, subject_id, object_id in object_triples:
        _write_varint(buffer, property_id)
        _write_varint(buffer, subject_id)
        _write_varint(buffer, object_id)

    # Datatype-property triples (literal stored inline).
    datatype_triples = list(store.datatype_store.iter_triples())
    _write_varint(buffer, len(datatype_triples))
    for property_id, subject_id, literal in datatype_triples:
        _write_varint(buffer, property_id)
        _write_varint(buffer, subject_id)
        _write_term(buffer, literal)

    _write_varint(buffer, store.skipped_triples)
    return buffer.getvalue()


def _sniff_version(payload) -> int:
    """Magic + version check shared by every loader entry point."""
    if len(payload) < 6:
        raise PersistenceError(
            "not a persisted SuccinctEdge store (shorter than the 6-byte preamble)"
        )
    if bytes(payload[:4]) != _MAGIC:
        raise PersistenceError("not a persisted SuccinctEdge store (bad magic)")
    (version,) = struct.unpack("<H", bytes(payload[4:6]))
    if version not in (_VERSION, _V4_VERSION):
        raise PersistenceError(
            f"unsupported format version {version} (supported: {_VERSION} and {_V4_VERSION})"
        )
    return version


def load_store_from_bytes(payload: bytes):
    """Rebuild a SuccinctEdge store from serialised bytes (v3 or v4).

    v3 payloads rebuild the SDS layouts from the encoded triples; v4 payloads
    take the zero-copy path over a ``memoryview`` of ``payload`` (no mmap —
    use :func:`load_store` for the mapped variant).
    """
    version = _sniff_version(payload)
    if version == _V4_VERSION:
        view = memoryview(payload).toreadonly() if isinstance(payload, (bytes, bytearray)) else memoryview(payload)
        return _load_store_v4(view, image=StoreImage(view, path=None))
    buffer = io.BytesIO(payload)
    buffer.seek(6)
    return _load_store_v3(buffer)


def _load_store_v3(buffer: BinaryIO):
    """Rebuild a store from a v3 stream positioned just past the preamble."""
    from repro.dictionary.literal_store import LiteralStore
    from repro.dictionary.statistics import DictionaryStatistics
    from repro.store.datatype_store import DatatypeTripleStore
    from repro.store.rdftype_store import RDFTypeStore
    from repro.store.succinct_edge import SuccinctEdge
    from repro.store.triple_store import ObjectTripleStore

    schema, concepts, properties, instances = _read_dictionary_sections(buffer)

    type_count = _read_varint(buffer)
    type_triples = []
    for _ in range(type_count):
        subject_id = _read_varint(buffer)
        concept_id = _read_varint(buffer)
        type_triples.append((subject_id, concept_id))

    object_count = _read_varint(buffer)
    object_triples = []
    for _ in range(object_count):
        property_id = _read_varint(buffer)
        subject_id = _read_varint(buffer)
        object_id = _read_varint(buffer)
        object_triples.append((property_id, subject_id, object_id))

    datatype_count = _read_varint(buffer)
    datatype_triples = []
    for _ in range(datatype_count):
        property_id = _read_varint(buffer)
        subject_id = _read_varint(buffer)
        literal = _read_term(buffer)
        if not isinstance(literal, Literal):
            raise PersistenceError("datatype triple object is not a literal")
        datatype_triples.append((property_id, subject_id, literal))

    skipped = _read_varint(buffer)

    store = SuccinctEdge(
        schema=schema,
        concepts=concepts,
        properties=properties,
        instances=instances,
        # Triples were serialised in PSO order by iter_triples, so the sort
        # pass can be skipped on reload.
        object_store=ObjectTripleStore(object_triples, presorted=True),
        datatype_store=DatatypeTripleStore(datatype_triples, LiteralStore(), presorted=True),
        type_store=RDFTypeStore(type_triples),
        statistics=DictionaryStatistics(concepts, properties, instances),
        skipped_triples=skipped,
    )
    return store


def save_store(store, path: str) -> int:
    """Serialise ``store`` to ``path`` (v3); return the number of bytes written."""
    payload = dump_store(store)
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def load_store(path: str, mmap: bool = True):
    """Load a persisted SuccinctEdge store, sniffing the format version.

    v3 files rebuild the SDS layouts from the encoded triples.  v4 images
    are **memory-mapped** by default: the SDS structures alias read-only
    ``memoryview`` slices of the mapping, so no per-triple decode happens
    and pages fault in lazily as queries touch them.  Pass ``mmap=False``
    to read a v4 image fully into memory instead (same zero-decode path
    over a private in-memory buffer; useful when the file may be replaced
    underneath a long-lived process).

    The loaded store carries the mapping handle as ``store.image`` (a
    :class:`StoreImage`; ``None`` for v3 loads) — call ``image.validate()``
    to detect a file modified behind an existing mapping.
    """
    with open(path, "rb") as handle:
        preamble = handle.read(6)
    try:
        version = _sniff_version(preamble)
    except PersistenceError as error:
        raise PersistenceError(f"cannot load store image {path!r}: {error}") from None
    if version == _VERSION:
        with open(path, "rb") as handle:
            payload = handle.read()
        buffer = io.BytesIO(payload)
        buffer.seek(6)
        return _load_store_v3(buffer)
    if mmap:
        handle = open(path, "rb")
        try:
            mapping = _mmaplib.mmap(handle.fileno(), 0, access=_mmaplib.ACCESS_READ)
        except (ValueError, OSError) as error:
            handle.close()
            raise PersistenceError(f"cannot map store image {path!r}: {error}") from error
        view = memoryview(mapping)
        image = StoreImage(view, path=path, mapping=mapping, handle=handle)
    else:
        with open(path, "rb") as handle:
            payload = handle.read()
        view = memoryview(payload).toreadonly()
        image = StoreImage(view, path=path)
    try:
        return _load_store_v4(view, image=image)
    except Exception:
        image.close(force=True)
        raise


def serialized_size_in_bytes(store) -> int:
    """v3 on-disk size of the store (the measurement behind Figures 9 and 10)."""
    return len(dump_store(store))


# --------------------------------------------------------------------------- #
# v4: the mmap-backed zero-copy store image
# --------------------------------------------------------------------------- #


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _word_bytes(words) -> bytes:
    """Little-endian byte payload of a 64-bit word buffer (array or view)."""
    import sys

    if sys.byteorder == "little":
        return words.tobytes()
    copied = array("Q", words)
    copied.byteswap()
    return copied.tobytes()


class _ImageWriter:
    """Accumulates aligned sections plus the varint meta stream of a v4 image."""

    def __init__(self) -> None:
        self.sections: List[bytes] = []
        self.meta = io.BytesIO()

    def add_section(self, payload: bytes) -> int:
        """Register a section payload; returns its TOC index."""
        self.sections.append(payload)
        return len(self.sections) - 1

    # -- SDS structures ------------------------------------------------- #

    def write_bitvector(self, bits: BitVector) -> None:
        """One section holding words + rank blocks + select samples, plus meta."""
        parts = (
            bits._words,
            bits._word_ranks,
            bits._superblock_ranks,
            bits._one_samples,
            bits._zero_samples,
        )
        section = self.add_section(b"".join(_word_bytes(part) for part in parts))
        meta = self.meta
        _write_varint(meta, section)
        _write_varint(meta, len(bits))
        _write_varint(meta, bits.count(1))
        for part in parts:
            _write_varint(meta, len(part))

    def write_wavelet_tree(self, tree: WaveletTree) -> None:
        """Three sections per tree: symbol counts, node table, node words.

        Every data-bearing internal node contributes one fixed-width record
        to the table (bitmap directory + child references) and its bitmap
        words to one shared heap — the layout
        :meth:`~repro.sds.wavelet_tree.WaveletTree.from_node_table`
        materialises nodes from lazily, so loading never walks the tree.
        """
        from repro.sds.wavelet_tree import NO_NODE_REF

        meta = self.meta
        _write_varint(meta, len(tree))
        _write_varint(meta, tree.alphabet_size)
        counts = tree._symbol_counts
        count_words = array("Q")
        for symbol in sorted(counts):
            count_words.append(symbol)
            count_words.append(counts[symbol])
        counts_section = self.add_section(_word_bytes(count_words))

        # Preorder over the data-bearing spine; empty subtrees and leaves
        # get no record (the reader rebuilds them from the symbol interval).
        records: List[object] = []
        index_of: Dict[int, int] = {}

        def collect(node) -> None:
            if node.is_leaf or node.bits is None:
                return
            index_of[id(node)] = len(records)
            records.append(node)
            collect(node.left)
            collect(node.right)

        collect(tree._root)
        table = array("Q")
        chunks: List[bytes] = []
        word_offset = 0
        for node in records:
            bits = node.bits
            parts = (
                bits._words,
                bits._word_ranks,
                bits._superblock_ranks,
                bits._one_samples,
                bits._zero_samples,
            )
            table.append(word_offset)
            table.append(len(bits))
            table.append(bits.count(1))
            for part in parts:
                table.append(len(part))
                chunks.append(_word_bytes(part))
                word_offset += len(part)
            table.append(index_of.get(id(node.left), NO_NODE_REF))
            table.append(index_of.get(id(node.right), NO_NODE_REF))
        table_section = self.add_section(_word_bytes(table))
        words_section = self.add_section(b"".join(chunks))
        _write_varint(meta, counts_section)
        _write_varint(meta, table_section)
        _write_varint(meta, words_section)
        _write_varint(meta, len(records))

    def write_int_sequence(self, sequence: IntSequence) -> None:
        """Packed words as one section; length and width in meta."""
        section = self.add_section(_word_bytes(sequence._words))
        meta = self.meta
        _write_varint(meta, section)
        _write_varint(meta, len(sequence))
        _write_varint(meta, sequence.width)

    def write_pair_tree(self, pairs: List[Tuple[int, int]]) -> None:
        """Sorted integer pairs interleaved into one word section."""
        words = array("Q")
        for a, b in pairs:
            words.append(a)
            words.append(b)
        section = self.add_section(_word_bytes(words))
        meta = self.meta
        _write_varint(meta, section)
        _write_varint(meta, len(pairs))

    def write_literals(self, literals) -> None:
        """Offset directory + record blob sections for the literal store."""
        from repro.dictionary.literal_store import BufferLiteralStore

        blob = bytearray()
        offsets = array("Q", [0])
        for position in range(len(literals)):
            blob += BufferLiteralStore.encode_record(literals.get(position))
            offsets.append(len(blob))
        offsets_section = self.add_section(_word_bytes(offsets))
        blob_section = self.add_section(bytes(blob))
        meta = self.meta
        _write_varint(meta, len(literals))
        _write_varint(meta, offsets_section)
        _write_varint(meta, blob_section)

    # -- final assembly -------------------------------------------------- #

    def render(self) -> bytes:
        """Lay out header + TOC + meta + page-aligned section heap."""
        meta_bytes = self.meta.getvalue()
        toc_offset = _V4_HEADER.size
        meta_offset = toc_offset + _V4_TOC_ENTRY.size * len(self.sections)
        heap_start = _align_up(meta_offset + len(meta_bytes), _V4_PAGE)

        offsets: List[int] = []
        cursor = heap_start
        for payload in self.sections:
            offsets.append(cursor)
            cursor = _align_up(cursor + len(payload), 8)
        file_length = cursor

        toc = b"".join(
            _V4_TOC_ENTRY.pack(offset, len(payload))
            for offset, payload in zip(offsets, self.sections)
        )
        checksum = zlib.crc32(toc + meta_bytes) & 0xFFFFFFFF
        header = _V4_HEADER.pack(
            _MAGIC,
            _V4_VERSION,
            0,
            _V4_PAGE,
            len(self.sections),
            toc_offset,
            meta_offset,
            len(meta_bytes),
            file_length,
            checksum,
            0,
        )
        out = bytearray(file_length)
        out[: len(header)] = header
        out[toc_offset:meta_offset] = toc
        out[meta_offset : meta_offset + len(meta_bytes)] = meta_bytes
        for offset, payload in zip(offsets, self.sections):
            out[offset : offset + len(payload)] = payload
        return bytes(out)


def dump_store_image(store) -> bytes:
    """Serialise a SuccinctEdge store as a v4 zero-copy image."""
    writer = _ImageWriter()
    meta = writer.meta

    # Decoded section: dictionaries, schema, bookkeeping, planner statistics.
    _write_dictionary_sections(meta, store)
    _write_varint(meta, store.skipped_triples)
    _write_statistics(meta, store.statistics)

    # Object-property layout.
    object_store = store.object_store
    _write_varint(meta, len(object_store))
    writer.write_wavelet_tree(object_store.wt_p)
    writer.write_wavelet_tree(object_store.wt_s)
    writer.write_wavelet_tree(object_store.wt_o)
    writer.write_bitvector(object_store.bm_ps)
    writer.write_bitvector(object_store.bm_so)

    # Datatype-property layout.
    datatype_store = store.datatype_store
    _write_varint(meta, len(datatype_store))
    writer.write_wavelet_tree(datatype_store.wt_p)
    writer.write_wavelet_tree(datatype_store.wt_s)
    writer.write_int_sequence(datatype_store.object_pointers)
    writer.write_bitvector(datatype_store.bm_ps)
    writer.write_bitvector(datatype_store.bm_so)
    writer.write_literals(datatype_store.literals)

    # rdf:type layout: both sorted pair orders, served by binary search.
    type_store = store.type_store
    _write_varint(meta, len(type_store))
    so_pairs = [key for key, _ in type_store._so.items()]
    os_pairs = [key for key, _ in type_store._os.items()]
    writer.write_pair_tree(so_pairs)
    writer.write_pair_tree(os_pairs)

    return writer.render()


def save_store_image(store, path: str, atomic: bool = False) -> int:
    """Write ``store`` as a v4 image at ``path``; return the bytes written.

    With ``atomic=True`` the image is staged as ``<path>.tmp`` and moved into
    place with :func:`os.replace`, so readers only ever observe either the
    old or the complete new image — the compact-and-swap discipline of
    :meth:`repro.store.updatable.UpdatableSuccinctEdge.compact`.
    """
    payload = dump_store_image(store)
    if atomic:
        staging = f"{path}.tmp"
        with open(staging, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, path)
    else:
        with open(path, "wb") as handle:
            handle.write(payload)
    return len(payload)


def upgrade_store_image(source_path: str, target_path: str) -> int:
    """Rewrite a persisted store (any version) as a v4 image.

    The one-off migration path for v3 files: load (rebuilding the layouts
    one last time), then emit the zero-copy image so every later start is a
    page-in instead of a re-encode.  Returns the bytes written.
    """
    store = load_store(source_path)
    return save_store_image(store, target_path)


def _write_statistics(meta: BinaryIO, statistics) -> None:
    """Join-aware planner statistics (PR 5 profiles + characteristic sets).

    Persisting them keeps a mapped store's query *plans* — and therefore its
    result row order — byte-identical to the builder path's.
    """
    _MARKER_TAGS = {"p": 0, "t": 1}
    profile_ids = statistics.profiled_property_ids()
    _write_varint(meta, len(profile_ids))
    for property_id in profile_ids:
        profile = statistics.property_profile(property_id)
        _write_varint(meta, property_id)
        _write_varint(meta, profile.triples)
        _write_varint(meta, profile.distinct_subjects)
        _write_varint(meta, profile.distinct_objects)
        _write_varint(meta, profile.build_triples)
    characteristic_sets = statistics.characteristic_sets
    _write_varint(meta, len(characteristic_sets))
    for signature in sorted(characteristic_sets, key=sorted):
        entry = characteristic_sets[signature]
        markers = sorted(signature)
        _write_varint(meta, len(markers))
        for kind, identifier in markers:
            _write_varint(meta, _MARKER_TAGS[kind])
            _write_varint(meta, identifier)
        _write_varint(meta, entry.count)
        triples = sorted(entry.triples.items())
        _write_varint(meta, len(triples))
        for (kind, identifier), count in triples:
            _write_varint(meta, _MARKER_TAGS[kind])
            _write_varint(meta, identifier)
            _write_varint(meta, count)
    _write_varint(meta, statistics.type_triple_count)


def _read_statistics(meta: BinaryIO, statistics) -> None:
    """Inverse of :func:`_write_statistics`; installs onto ``statistics``."""
    from repro.dictionary.statistics import CharacteristicSet, PropertyProfile

    _MARKER_KINDS = ("p", "t")

    def read_marker() -> Tuple[str, int]:
        tag = _read_varint(meta)
        if tag >= len(_MARKER_KINDS):
            raise PersistenceError(f"unknown characteristic-set marker tag {tag}")
        return _MARKER_KINDS[tag], _read_varint(meta)

    profiles: Dict[int, "PropertyProfile"] = {}
    for _ in range(_read_varint(meta)):
        property_id = _read_varint(meta)
        profiles[property_id] = PropertyProfile(
            triples=_read_varint(meta),
            distinct_subjects=_read_varint(meta),
            distinct_objects=_read_varint(meta),
            build_triples=_read_varint(meta),
        )
    characteristic_sets: Dict = {}
    for _ in range(_read_varint(meta)):
        markers = [read_marker() for _ in range(_read_varint(meta))]
        entry = CharacteristicSet(count=_read_varint(meta))
        for _ in range(_read_varint(meta)):
            marker = read_marker()
            entry.triples[marker] = _read_varint(meta)
        characteristic_sets[frozenset(markers)] = entry
    type_triple_count = _read_varint(meta)
    if profiles or characteristic_sets or type_triple_count:
        statistics.register_profiles(
            profiles, characteristic_sets, type_triple_count=type_triple_count
        )


class StoreImage:
    """Handle on the buffer backing a loaded v4 store.

    Holds the ``mmap`` (or in-memory buffer) that every zero-copy SDS
    structure of the store aliases, plus enough of the header to re-verify
    it later: :meth:`validate` detects a file that was overwritten behind an
    existing mapping — the one failure mode ``mmap`` cannot prevent — and
    raises :class:`PersistenceError` telling the operator to reload.
    """

    def __init__(self, view: memoryview, path: Optional[str], mapping=None, handle=None) -> None:
        self.view = view
        self.path = path
        self._mapping = mapping
        self._handle = handle
        self._expected_checksum: Optional[int] = None
        self._toc_span: Optional[Tuple[int, int]] = None

    @property
    def mapped(self) -> bool:
        """Whether the image is an OS mapping (vs. an in-memory buffer)."""
        return self._mapping is not None

    def size_in_bytes(self) -> int:
        """Total image size (every section plus header, TOC and meta)."""
        return self.view.nbytes

    def _remember(self, checksum: int, toc_span: Tuple[int, int]) -> None:
        self._expected_checksum = checksum
        self._toc_span = toc_span

    def validate(self) -> None:
        """Re-verify the mapped header against what was loaded.

        Raises :class:`PersistenceError` when the underlying file no longer
        carries the image this store was loaded from (magic, version or
        checksum mismatch) — e.g. a writer rewrote it in place instead of
        using the atomic-replace discipline.  Reload the store to recover.
        """
        where = self.path or "<memory>"
        view = self.view
        if bytes(view[:4]) != _MAGIC:
            raise PersistenceError(
                f"store image {where} was modified underneath the mapping (bad magic); "
                "reload the store — writers must replace images atomically, not rewrite them"
            )
        (version,) = struct.unpack("<H", bytes(view[4:6]))
        if version != _V4_VERSION:
            raise PersistenceError(
                f"store image {where} was modified underneath the mapping "
                f"(version changed to {version}); reload the store"
            )
        if self._expected_checksum is not None and self._toc_span is not None:
            start, end = self._toc_span
            actual = zlib.crc32(bytes(view[start:end])) & 0xFFFFFFFF
            if actual != self._expected_checksum:
                raise PersistenceError(
                    f"store image {where} was modified underneath the mapping "
                    "(TOC/meta checksum mismatch); reload the store — writers must "
                    "replace images atomically, not rewrite them"
                )

    def close(self, force: bool = False) -> None:
        """Release the mapping and file handle.

        Fails with :class:`PersistenceError` while SDS structures still alias
        the buffer, unless ``force`` drops the handle references without
        closing the mapping (the garbage collector reclaims it once the last
        view dies).
        """
        if self._mapping is not None:
            try:
                self.view.release()
                self._mapping.close()
            except BufferError:
                if not force:
                    raise PersistenceError(
                        "store image is still referenced by loaded structures; "
                        "drop the store before closing its image"
                    ) from None
            self._mapping = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _load_store_v4(view: memoryview, image: StoreImage):
    """Assemble a SuccinctEdge store over a v4 image buffer, zero-copy."""
    from repro.dictionary.literal_store import BufferLiteralStore
    from repro.dictionary.statistics import DictionaryStatistics
    from repro.store.datatype_store import DatatypeTripleStore
    from repro.store.rdftype_store import RDFTypeStore
    from repro.store.succinct_edge import SuccinctEdge
    from repro.store.triple_store import ObjectTripleStore

    where = image.path or "<memory>"
    if view.nbytes < _V4_HEADER.size:
        raise PersistenceError(
            f"store image {where} is truncated: {view.nbytes} bytes is smaller "
            f"than the {_V4_HEADER.size}-byte header"
        )
    (
        magic,
        version,
        _flags,
        page_size,
        section_count,
        toc_offset,
        meta_offset,
        meta_length,
        file_length,
        checksum,
        _reserved,
    ) = _V4_HEADER.unpack(bytes(view[: _V4_HEADER.size]))
    if magic != _MAGIC or version != _V4_VERSION:
        raise PersistenceError(f"store image {where} has a corrupt header")
    if page_size == 0 or page_size % 8:
        raise PersistenceError(f"store image {where} declares invalid page size {page_size}")
    if file_length != view.nbytes:
        raise PersistenceError(
            f"store image {where} is truncated or over-long: header declares "
            f"{file_length} bytes, file has {view.nbytes}"
        )
    toc_end = toc_offset + _V4_TOC_ENTRY.size * section_count
    meta_end = meta_offset + meta_length
    if toc_offset != _V4_HEADER.size or meta_offset != toc_end or meta_end > file_length:
        raise PersistenceError(f"store image {where} has an inconsistent TOC/meta layout")
    if zlib.crc32(bytes(view[toc_offset:meta_end])) & 0xFFFFFFFF != checksum:
        raise PersistenceError(
            f"store image {where} fails its TOC/meta checksum — the file is corrupt "
            "or was modified after writing; re-create it with save_store_image()"
        )
    image._remember(checksum, (toc_offset, meta_end))

    sections: List[Tuple[int, int]] = []
    for index in range(section_count):
        entry_at = toc_offset + index * _V4_TOC_ENTRY.size
        offset, length = _V4_TOC_ENTRY.unpack(
            bytes(view[entry_at : entry_at + _V4_TOC_ENTRY.size])
        )
        if offset % 8:
            raise PersistenceError(
                f"store image {where}: section {index} is misaligned "
                f"(offset {offset} is not 8-byte aligned); the image is corrupt"
            )
        if offset < meta_end or offset + length > file_length:
            raise PersistenceError(
                f"store image {where}: section {index} "
                f"[{offset}, {offset + length}) falls outside the file "
                f"(length {file_length}); the image is truncated or corrupt"
            )
        sections.append((offset, length))

    def section_bytes(index: int) -> memoryview:
        offset, length = sections[index]
        return view[offset : offset + length]

    def section_words(index: int):
        return words_view(section_bytes(index))

    meta = io.BytesIO(bytes(view[meta_offset:meta_end]))

    schema, concepts, properties, instances = _read_dictionary_sections(meta)
    skipped = _read_varint(meta)
    statistics = DictionaryStatistics(concepts, properties, instances)
    _read_statistics(meta, statistics)

    def read_bitvector() -> BitVector:
        section = _read_varint(meta)
        length = _read_varint(meta)
        ones = _read_varint(meta)
        counts = [_read_varint(meta) for _ in range(5)]
        words_all = section_words(section)
        if len(words_all) != sum(counts):
            raise PersistenceError(
                f"store image {where}: bitvector section {section} holds "
                f"{len(words_all)} words, directory expects {sum(counts)}"
            )
        parts = []
        cursor = 0
        for count in counts:
            parts.append(words_all[cursor : cursor + count])
            cursor += count
        return BitVector.from_buffers(parts[0], length, ones, parts[1], parts[2], parts[3], parts[4])

    def read_wavelet_tree() -> WaveletTree:
        from repro.sds.wavelet_tree import NODE_RECORD_WORDS

        length = _read_varint(meta)
        sigma = _read_varint(meta)
        counts_section = _read_varint(meta)
        table_section = _read_varint(meta)
        words_section = _read_varint(meta)
        node_count = _read_varint(meta)
        count_words = section_words(counts_section)
        if len(count_words) % 2:
            raise PersistenceError(
                f"store image {where}: wavelet-tree symbol-count section "
                f"{counts_section} holds an odd number of words"
            )
        pairs = iter(count_words)
        symbol_counts = dict(zip(pairs, pairs))
        table = section_words(table_section)
        if len(table) != node_count * NODE_RECORD_WORDS:
            raise PersistenceError(
                f"store image {where}: wavelet-tree node table {table_section} "
                f"holds {len(table)} words, expected {node_count * NODE_RECORD_WORDS}"
            )
        return WaveletTree.from_node_table(
            length, sigma, symbol_counts, table, section_words(words_section)
        )

    def read_int_sequence() -> IntSequence:
        section = _read_varint(meta)
        length = _read_varint(meta)
        width = _read_varint(meta)
        return IntSequence.from_buffers(section_words(section), length, width)

    def read_pair_tree() -> FrozenPairTree:
        section = _read_varint(meta)
        count = _read_varint(meta)
        words = section_words(section)
        if len(words) != 2 * count:
            raise PersistenceError(
                f"store image {where}: pair section {section} holds {len(words)} "
                f"words, expected {2 * count}"
            )
        return FrozenPairTree(words, count)

    object_count = _read_varint(meta)
    object_store = ObjectTripleStore._from_components(
        wt_p=read_wavelet_tree(),
        wt_s=read_wavelet_tree(),
        wt_o=read_wavelet_tree(),
        bm_ps=read_bitvector(),
        bm_so=read_bitvector(),
        triple_count=object_count,
    )

    datatype_count = _read_varint(meta)
    dt_wt_p = read_wavelet_tree()
    dt_wt_s = read_wavelet_tree()
    dt_pointers = read_int_sequence()
    dt_bm_ps = read_bitvector()
    dt_bm_so = read_bitvector()
    literal_count = _read_varint(meta)
    literal_offsets = section_words(_read_varint(meta))
    literal_blob = section_bytes(_read_varint(meta))
    datatype_store = DatatypeTripleStore._from_components(
        wt_p=dt_wt_p,
        wt_s=dt_wt_s,
        object_pointers=dt_pointers,
        bm_ps=dt_bm_ps,
        bm_so=dt_bm_so,
        literals=BufferLiteralStore(literal_offsets, literal_blob, literal_count),
        triple_count=datatype_count,
    )

    type_count = _read_varint(meta)
    type_store = RDFTypeStore.from_frozen(read_pair_tree(), read_pair_tree(), type_count)

    store = SuccinctEdge(
        schema=schema,
        concepts=concepts,
        properties=properties,
        instances=instances,
        object_store=object_store,
        datatype_store=datatype_store,
        type_store=type_store,
        statistics=statistics,
        skipped_triples=skipped,
    )
    store.image = image
    return store
