"""Query optimization and processing (paper Section 5).

* :mod:`repro.query.query_graph` — the query graph (TP nodes, SS/SO join edges);
* :mod:`repro.query.cardinality` — join-aware cardinality estimation
  (per-property distinct counts, characteristic sets, chained selectivities);
* :mod:`repro.query.optimizer` — the cost-based DP planner (kernel-call cost
  model) and the paper's Algorithm 1 heuristic planner, plus the
  solution-modifier pipeline planner;
* :mod:`repro.query.plan` — the unified plan IR: costed left-deep steps,
  group operators (OPTIONAL/VALUES/FILTER placement), modifier pipeline;
* :mod:`repro.query.tp_eval` — triple-pattern evaluation as SDS operations
  (Algorithms 3 and 4) with LiteMat interval reasoning;
* :mod:`repro.query.operators` — the streaming (generator-based) physical
  operators: joins, OPTIONAL/VALUES, FILTER/BIND, sort/top-k, slice;
* :mod:`repro.query.engine` — the streaming SELECT/ASK pipeline;
* :mod:`repro.query.materializing` — the seed list-materializing engine,
  kept as the differential-testing oracle;
* :mod:`repro.query.rewriter` — the "high-level concept" query helper of the
  paper's contribution (iv).
"""

from repro.query.cardinality import CardinalityEstimator
from repro.query.engine import QueryEngine
from repro.query.materializing import MaterializingQueryEngine
from repro.query.optimizer import (
    CostBasedJoinOrderOptimizer,
    CostModel,
    HeuristicJoinOrderOptimizer,
    JoinOrderOptimizer,
)
from repro.query.parallel import ParallelExecutor, ParallelQueryEngine
from repro.query.plan import (
    AccessPath,
    GroupPlan,
    ModifierOp,
    ModifierStep,
    PhysicalPlan,
    PipelinePlan,
    PlanStep,
)
from repro.query.query_graph import JoinEdge, QueryGraph, QueryNode

__all__ = [
    "AccessPath",
    "CardinalityEstimator",
    "CostBasedJoinOrderOptimizer",
    "CostModel",
    "GroupPlan",
    "HeuristicJoinOrderOptimizer",
    "JoinEdge",
    "JoinOrderOptimizer",
    "MaterializingQueryEngine",
    "ModifierOp",
    "ModifierStep",
    "ParallelExecutor",
    "ParallelQueryEngine",
    "PhysicalPlan",
    "PipelinePlan",
    "PlanStep",
    "QueryEngine",
    "QueryGraph",
    "QueryNode",
]
