"""Recursive-descent parser for the supported SPARQL subset.

Supported grammar (sufficient for the paper's 26 evaluation queries, the
motivating anomaly-detection query of Section 2, and the UNION rewritings
used by the baseline systems)::

    Query      := Prologue SELECT (DISTINCT)? (Var+ | '*') WHERE? Group (LIMIT INT)?
    Prologue   := (PREFIX pname: <iri>)*
    Group      := '{' (TriplesBlock | Filter | Bind | GroupUnion)* '}'
    GroupUnion := Group (UNION Group)+
    Filter     := FILTER '(' Expression ')'
    Bind       := BIND '(' Expression AS Var ')'

Triple blocks support the ``a`` keyword, ``;`` predicate lists and ``,``
object lists.  Expressions support ``||``, ``&&``, ``!``, comparisons,
arithmetic, and the builtins ``regex``, ``str``, ``if``, ``bound``, ``abs``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.rdf.namespaces import RDF, WELL_KNOWN_PREFIXES
from repro.rdf.terms import BlankNode, Literal, URI
from repro.rdf.terms import XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER
from repro.sparql.ast import (
    Arithmetic,
    BasicGraphPattern,
    Bind,
    BooleanExpression,
    Comparison,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    Negation,
    PatternTerm,
    SelectQuery,
    TriplePattern,
    Union,
    Variable,
)


class SparqlParseError(ValueError):
    """Raised when a query falls outside the supported SPARQL subset."""


_TOKEN = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"\s]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^<[^<>\s]*>|\^\^[A-Za-z_][\w\-]*:[\w\-]*|@[A-Za-z0-9\-]+)?)
  | (?P<var>\?[A-Za-z_][\w]*)
  | (?P<bnode>_:[A-Za-z0-9_.\-]+)
  | (?P<number>[+-]?\d+\.\d+|[+-]?\d+)
  | (?P<comparator><=|>=|!=|=|<|>)
  | (?P<logic>\|\||&&)
  | (?P<keyword>\b(?:SELECT|DISTINCT|WHERE|FILTER|BIND|AS|UNION|PREFIX|BASE|LIMIT|true|false|a)\b)
  | (?P<pname>[A-Za-z_][\w\-]*:[\w.\-]*|:[\w.\-]+)
  | (?P<name>[A-Za-z_][\w]*)
  | (?P<punct>[{}().;,!*/+\-])
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.IGNORECASE,
)

_ESCAPES = {"\\n": "\n", "\\r": "\r", "\\t": "\t", '\\"': '"', "\\\\": "\\"}


def _unescape(text: str) -> str:
    result = text
    for escaped, raw in _ESCAPES.items():
        result = result.replace(escaped, raw)
    return result


def _tokenize(query: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(query):
        match = _TOKEN.match(query, position)
        if not match:
            snippet = query[position : position + 40]
            raise SparqlParseError(f"unexpected input at offset {position}: {snippet!r}")
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append((kind, match.group()))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, query: str) -> None:
        self._tokens = _tokenize(query)
        self._index = 0
        self._prefixes = dict(WELL_KNOWN_PREFIXES)

    # -------------------------------------------------------------- #
    # token helpers
    # -------------------------------------------------------------- #

    def _peek(self, offset: int = 0) -> Optional[Tuple[str, str]]:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise SparqlParseError("unexpected end of query")
        self._index += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self._peek()
        if token and token[0] == "keyword" and token[1].upper() in {k.upper() for k in keywords}:
            self._index += 1
            return token[1].upper()
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            raise SparqlParseError(f"expected {keyword!r}, got {token!r}")

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token and token[0] == "punct" and token[1] == char:
            self._index += 1
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        if not self._accept_punct(char):
            token = self._peek()
            raise SparqlParseError(f"expected {char!r}, got {token!r}")

    # -------------------------------------------------------------- #
    # prologue and query form
    # -------------------------------------------------------------- #

    def parse(self) -> SelectQuery:
        self._parse_prologue()
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        projection = self._parse_projection()
        self._accept_keyword("WHERE")
        where = self._parse_group()
        limit = self._parse_limit()
        if self._peek() is not None:
            raise SparqlParseError(f"trailing tokens after query: {self._peek()!r}")
        return SelectQuery(projection=projection, where=where, distinct=distinct, limit=limit)

    def _parse_prologue(self) -> None:
        while self._accept_keyword("PREFIX"):
            kind, value = self._next()
            if kind != "pname" or not value.endswith(":"):
                raise SparqlParseError(f"expected prefix name, got {value!r}")
            prefix = value[:-1]
            kind, iri = self._next()
            if kind != "iri":
                raise SparqlParseError(f"expected IRI after prefix {prefix!r}, got {iri!r}")
            self._prefixes[prefix] = iri[1:-1]

    def _parse_projection(self) -> Optional[List[Variable]]:
        token = self._peek()
        if token and token[0] == "punct" and token[1] == "*":
            self._index += 1
            return None
        variables: List[Variable] = []
        while True:
            token = self._peek()
            if token and token[0] == "var":
                self._index += 1
                variables.append(Variable(token[1][1:]))
            else:
                break
        if not variables:
            raise SparqlParseError("SELECT clause must project '*' or at least one variable")
        return variables

    def _parse_limit(self) -> Optional[int]:
        if self._accept_keyword("LIMIT"):
            kind, value = self._next()
            if kind != "number":
                raise SparqlParseError(f"expected integer after LIMIT, got {value!r}")
            return int(value)
        return None

    # -------------------------------------------------------------- #
    # group graph pattern
    # -------------------------------------------------------------- #

    def _parse_group(self) -> GroupGraphPattern:
        self._expect_punct("{")
        group = GroupGraphPattern()
        while True:
            token = self._peek()
            if token is None:
                raise SparqlParseError("unterminated group graph pattern")
            if token == ("punct", "}"):
                self._index += 1
                return group
            if token[0] == "keyword" and token[1].upper() == "FILTER":
                self._index += 1
                group.filters.append(self._parse_filter())
                self._accept_punct(".")
                continue
            if token[0] == "keyword" and token[1].upper() == "BIND":
                self._index += 1
                group.binds.append(self._parse_bind())
                self._accept_punct(".")
                continue
            if token == ("punct", "{"):
                group.unions.append(self._parse_union())
                self._accept_punct(".")
                continue
            self._parse_triples_block(group.bgp)

    def _parse_union(self) -> Union:
        branches = [self._parse_group()]
        while self._accept_keyword("UNION"):
            branches.append(self._parse_group())
        return Union(branches=branches)

    def _parse_filter(self) -> Filter:
        self._expect_punct("(")
        expression = self._parse_expression()
        self._expect_punct(")")
        return Filter(expression=expression)

    def _parse_bind(self) -> Bind:
        self._expect_punct("(")
        expression = self._parse_expression()
        self._expect_keyword("AS")
        kind, value = self._next()
        if kind != "var":
            raise SparqlParseError(f"expected variable after AS, got {value!r}")
        self._expect_punct(")")
        return Bind(expression=expression, variable=Variable(value[1:]))

    # -------------------------------------------------------------- #
    # triples
    # -------------------------------------------------------------- #

    def _parse_triples_block(self, bgp: BasicGraphPattern) -> None:
        subject = self._parse_pattern_term()
        while True:
            predicate = self._parse_pattern_term(allow_a=True)
            while True:
                obj = self._parse_pattern_term()
                bgp.patterns.append(TriplePattern(subject, predicate, obj))
                if self._accept_punct(","):
                    continue
                break
            if self._accept_punct(";"):
                token = self._peek()
                # A dangling ';' before '.' or '}' is tolerated.
                if token in (("punct", "."), ("punct", "}")):
                    self._accept_punct(".")
                    return
                continue
            self._accept_punct(".")
            return

    def _parse_pattern_term(self, allow_a: bool = False) -> PatternTerm:
        kind, value = self._next()
        if kind == "var":
            return Variable(value[1:])
        if kind == "iri":
            return URI(value[1:-1])
        if kind == "pname":
            return self._resolve_pname(value)
        if kind == "bnode":
            return BlankNode(value[2:])
        if kind == "literal":
            return self._parse_literal(value)
        if kind == "number":
            datatype = XSD_DECIMAL if "." in value else XSD_INTEGER
            return Literal(value, datatype=datatype)
        if kind == "keyword":
            upper = value.upper()
            if upper == "A":
                return RDF.type
            if upper in ("TRUE", "FALSE"):
                return Literal(value.lower(), datatype=XSD_BOOLEAN)
        raise SparqlParseError(f"unexpected token {value!r} in triple pattern")

    def _resolve_pname(self, pname: str) -> URI:
        prefix, _, local = pname.partition(":")
        if prefix not in self._prefixes:
            raise SparqlParseError(f"unknown prefix {prefix!r} in {pname!r}")
        return URI(self._prefixes[prefix] + local)

    def _parse_literal(self, raw: str) -> Literal:
        closing = raw.rindex('"')
        lexical = _unescape(raw[1:closing])
        suffix = raw[closing + 1 :]
        if suffix.startswith("^^<"):
            return Literal(lexical, datatype=suffix[3:-1])
        if suffix.startswith("^^"):
            return Literal(lexical, datatype=self._resolve_pname(suffix[2:]).value)
        if suffix.startswith("@"):
            return Literal(lexical, language=suffix[1:])
        return Literal(lexical)

    # -------------------------------------------------------------- #
    # expressions (precedence climbing)
    # -------------------------------------------------------------- #

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        operands = [left]
        while True:
            token = self._peek()
            if token and token[0] == "logic" and token[1] == "||":
                self._index += 1
                operands.append(self._parse_and())
            else:
                break
        if len(operands) == 1:
            return left
        return BooleanExpression(operator="or", operands=tuple(operands))

    def _parse_and(self) -> Expression:
        left = self._parse_comparison()
        operands = [left]
        while True:
            token = self._peek()
            if token and token[0] == "logic" and token[1] == "&&":
                self._index += 1
                operands.append(self._parse_comparison())
            else:
                break
        if len(operands) == 1:
            return left
        return BooleanExpression(operator="and", operands=tuple(operands))

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token and token[0] == "comparator":
            self._index += 1
            right = self._parse_additive()
            return Comparison(operator=token[1], left=left, right=right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token and token[0] == "punct" and token[1] in "+-":
                self._index += 1
                right = self._parse_multiplicative()
                left = Arithmetic(operator=token[1], left=left, right=right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token and token[0] == "punct" and token[1] in "*/":
                self._index += 1
                right = self._parse_unary()
                left = Arithmetic(operator=token[1], left=left, right=right)
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self._accept_punct("!"):
            return Negation(operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token is None:
            raise SparqlParseError("unexpected end of expression")
        kind, value = token
        if kind == "punct" and value == "(":
            self._index += 1
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if kind == "var":
            self._index += 1
            return Variable(value[1:])
        if kind == "iri":
            self._index += 1
            return URI(value[1:-1])
        if kind == "literal":
            self._index += 1
            return self._parse_literal(value)
        if kind == "number":
            self._index += 1
            datatype = XSD_DECIMAL if "." in value else XSD_INTEGER
            return Literal(value, datatype=datatype)
        if kind == "keyword" and value.upper() in ("TRUE", "FALSE"):
            self._index += 1
            return Literal(value.lower(), datatype=XSD_BOOLEAN)
        if kind in ("name", "keyword", "pname"):
            # Function call: name '(' args ')'
            next_token = self._peek(1)
            if next_token == ("punct", "("):
                self._index += 2
                arguments: List[Expression] = []
                if not self._accept_punct(")"):
                    while True:
                        arguments.append(self._parse_expression())
                        if self._accept_punct(","):
                            continue
                        self._expect_punct(")")
                        break
                return FunctionCall(name=value.lower(), arguments=tuple(arguments))
            if kind == "pname":
                self._index += 1
                return self._resolve_pname(value)
        raise SparqlParseError(f"unexpected token {value!r} in expression")


def parse_query(query: str) -> SelectQuery:
    """Parse a SPARQL SELECT query (supported subset) into its AST."""
    return _Parser(query).parse()
