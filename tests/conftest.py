"""Shared fixtures and the naive query oracle used across the test suite."""

from __future__ import annotations

import itertools
from typing import List, Optional

import pytest

from repro.ontology.rhodf import saturate_properties, saturate_types
from repro.ontology.schema import OntologySchema
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, RDFS, Namespace
from repro.rdf.terms import Literal, Triple
from repro.sparql.ast import GroupGraphPattern, SelectQuery, TriplePattern, Variable
from repro.sparql.bindings import Binding, ResultSet
from repro.sparql.expressions import evaluate_bind, evaluate_filter
from repro.sparql.parser import parse_query
from repro.store.succinct_edge import SuccinctEdge
from repro.workloads.engie import engie_ontology, water_distribution_graph
from repro.workloads.lubm import LubmDataset, generate_lubm
from repro.workloads.queries import QueryCatalog

EX = Namespace("http://example.org/")


# --------------------------------------------------------------------------- #
# naive oracle: straightforward pattern matching over a Graph
# --------------------------------------------------------------------------- #


def naive_bgp_bindings(graph: Graph, patterns: List[TriplePattern]) -> List[Binding]:
    """Ground-truth BGP evaluation: nested loops over the whole graph."""
    bindings = [Binding()]
    for pattern in patterns:
        next_bindings: List[Binding] = []
        for binding in bindings:
            for triple in graph:
                candidate = _match_pattern(pattern, triple, binding)
                if candidate is not None:
                    next_bindings.append(candidate)
        bindings = next_bindings
    return bindings


def _match_pattern(pattern: TriplePattern, triple: Triple, binding: Binding) -> Optional[Binding]:
    current = binding
    for slot, value in (
        (pattern.subject, triple.subject),
        (pattern.predicate, triple.predicate),
        (pattern.object, triple.object),
    ):
        if isinstance(slot, Variable):
            existing = current.get(slot.name)
            if existing is None:
                current = current.extended(slot.name, value)
            elif existing != value:
                return None
        elif slot != value:
            return None
    return current


def naive_query(graph: Graph, query: str | SelectQuery) -> ResultSet:
    """Ground-truth SELECT evaluation (BGP + UNION + BIND + FILTER)."""
    parsed = parse_query(query) if isinstance(query, str) else query
    bindings = _naive_group(graph, parsed.where)
    names = parsed.projected_names()
    result = ResultSet(names, [binding.project(names) for binding in bindings])
    if parsed.distinct:
        result = result.distinct()
    if parsed.limit is not None:
        result = ResultSet(result.variables, result.bindings[: parsed.limit])
    return result


def _naive_group(graph: Graph, group: GroupGraphPattern) -> List[Binding]:
    bindings = naive_bgp_bindings(graph, list(group.bgp.patterns))
    for union in group.unions:
        union_bindings: List[Binding] = []
        for branch in union.branches:
            union_bindings.extend(_naive_group(graph, branch))
        merged: List[Binding] = []
        for left, right in itertools.product(bindings, union_bindings):
            combined = left.merged(right)
            if combined is not None:
                merged.append(combined)
        bindings = merged if bindings else union_bindings
        if not group.bgp.patterns and len(group.unions) == 1:
            bindings = union_bindings
    for bind in group.binds:
        updated = []
        for binding in bindings:
            value = evaluate_bind(bind.expression, binding)
            updated.append(binding if value is None else binding.extended(bind.variable.name, value))
        bindings = updated
    for constraint in group.filters:
        bindings = [b for b in bindings if evaluate_filter(constraint.expression, b)]
    return bindings


def hierarchy_closure(graph: Graph, schema: OntologySchema) -> Graph:
    """Concept + property hierarchy closure (the reasoning SuccinctEdge covers)."""
    closed = saturate_properties(graph, schema)
    closed = saturate_types(closed, schema)
    return closed


# --------------------------------------------------------------------------- #
# toy university fixture (small, hand-checkable)
# --------------------------------------------------------------------------- #


def build_toy_ontology() -> Graph:
    ontology = Graph()
    axioms = [
        (EX.GraduateStudent, RDFS.subClassOf, EX.Student),
        (EX.UndergraduateStudent, RDFS.subClassOf, EX.Student),
        (EX.Student, RDFS.subClassOf, EX.Person),
        (EX.Professor, RDFS.subClassOf, EX.Person),
        (EX.FullProfessor, RDFS.subClassOf, EX.Professor),
        (EX.Department, RDFS.subClassOf, EX.Organization),
        (EX.University, RDFS.subClassOf, EX.Organization),
        (EX.headOf, RDFS.subPropertyOf, EX.worksFor),
        (EX.worksFor, RDFS.subPropertyOf, EX.memberOf),
    ]
    for subject, predicate, obj in axioms:
        ontology.add(Triple(subject, predicate, obj))
    return ontology


def build_toy_data() -> Graph:
    data = Graph()
    triples = [
        (EX.alice, RDF.type, EX.GraduateStudent),
        (EX.bob, RDF.type, EX.FullProfessor),
        (EX.carol, RDF.type, EX.UndergraduateStudent),
        (EX.dave, RDF.type, EX.Professor),
        (EX.dept1, RDF.type, EX.Department),
        (EX.dept2, RDF.type, EX.Department),
        (EX.univ, RDF.type, EX.University),
        (EX.alice, EX.memberOf, EX.dept1),
        (EX.carol, EX.memberOf, EX.dept2),
        (EX.bob, EX.headOf, EX.dept1),
        (EX.dave, EX.worksFor, EX.dept2),
        (EX.dept1, EX.subOrganizationOf, EX.univ),
        (EX.dept2, EX.subOrganizationOf, EX.univ),
        (EX.alice, EX.advisor, EX.bob),
        (EX.carol, EX.advisor, EX.dave),
        (EX.alice, EX.name, Literal("Alice")),
        (EX.bob, EX.name, Literal("Bob")),
        (EX.carol, EX.name, Literal("Carol")),
        (EX.dave, EX.name, Literal("Dave")),
        (EX.alice, EX.age, Literal(27)),
        (EX.bob, EX.age, Literal(55)),
    ]
    for subject, predicate, obj in triples:
        data.add(Triple(subject, predicate, obj))
    return data


@pytest.fixture(scope="session")
def toy_ontology() -> Graph:
    return build_toy_ontology()


@pytest.fixture(scope="session")
def toy_data() -> Graph:
    return build_toy_data()


@pytest.fixture(scope="session")
def toy_store(toy_data: Graph, toy_ontology: Graph) -> SuccinctEdge:
    return SuccinctEdge.from_graph(toy_data, ontology=toy_ontology)


@pytest.fixture(scope="session")
def toy_schema(toy_ontology: Graph) -> OntologySchema:
    return OntologySchema.from_graph(toy_ontology)


# --------------------------------------------------------------------------- #
# small LUBM fixture (a couple of departments, still hundreds of entities)
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="session")
def small_lubm() -> LubmDataset:
    return generate_lubm(departments=2, seed=11)


@pytest.fixture(scope="session")
def small_lubm_store(small_lubm: LubmDataset) -> SuccinctEdge:
    return SuccinctEdge.from_graph(small_lubm.graph, ontology=small_lubm.ontology)


@pytest.fixture(scope="session")
def small_lubm_catalog(small_lubm: LubmDataset) -> QueryCatalog:
    return QueryCatalog(small_lubm)


# --------------------------------------------------------------------------- #
# ENGIE fixtures
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="session")
def engie_graph() -> Graph:
    return water_distribution_graph(observations_per_sensor=6, stations=2, seed=3)


@pytest.fixture(scope="session")
def engie_schema_graph() -> Graph:
    return engie_ontology()


@pytest.fixture(scope="session")
def engie_store(engie_graph: Graph, engie_schema_graph: Graph) -> SuccinctEdge:
    return SuccinctEdge.from_graph(engie_graph, ontology=engie_schema_graph)
