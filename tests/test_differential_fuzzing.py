"""Differential property-based tests.

Random small graphs and random basic graph patterns are evaluated by three
independent implementations — the SuccinctEdge engine (SDS access paths,
LiteMat reasoning), the multi-index baseline (hash indexes, UNION rewriting)
and the naive nested-loop oracle — which must always agree.  This is the
strongest end-to-end invariant of the reproduction: whatever the data and
query shape, the compact self-indexed store answers exactly like a
conventional store.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.multi_index_store import MultiIndexMemoryStore
from repro.ontology.schema import OntologySchema
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace, RDF, RDFS
from repro.rdf.terms import Literal, Triple
from repro.sparql.ast import BasicGraphPattern, GroupGraphPattern, SelectQuery, TriplePattern, Variable
from repro.store.succinct_edge import SuccinctEdge
from tests.conftest import hierarchy_closure, naive_bgp_bindings

EX = Namespace("http://fuzz.example.org/")

_CONCEPTS = [EX[f"C{i}"] for i in range(6)]
_PROPERTIES = [EX[f"p{i}"] for i in range(4)]
_DATA_PROPERTIES = [EX[f"d{i}"] for i in range(2)]
_INDIVIDUALS = [EX[f"i{i}"] for i in range(10)]
_LITERALS = [Literal(value) for value in (1, 2, 3, "a", "b")]


@st.composite
def random_dataset(draw):
    """A random ontology (forest over concepts/properties) plus a random ABox."""
    ontology = Graph()
    for index, concept in enumerate(_CONCEPTS[1:], start=1):
        parent_index = draw(st.integers(min_value=0, max_value=index - 1))
        if draw(st.booleans()):
            ontology.add(Triple(concept, RDFS.subClassOf, _CONCEPTS[parent_index]))
    for index, prop in enumerate(_PROPERTIES[1:], start=1):
        parent_index = draw(st.integers(min_value=0, max_value=index - 1))
        if draw(st.booleans()):
            ontology.add(Triple(prop, RDFS.subPropertyOf, _PROPERTIES[parent_index]))

    data = Graph()
    triple_count = draw(st.integers(min_value=0, max_value=40))
    for _ in range(triple_count):
        kind = draw(st.integers(min_value=0, max_value=2))
        subject = draw(st.sampled_from(_INDIVIDUALS))
        if kind == 0:
            data.add(Triple(subject, RDF.type, draw(st.sampled_from(_CONCEPTS))))
        elif kind == 1:
            data.add(
                Triple(subject, draw(st.sampled_from(_PROPERTIES)), draw(st.sampled_from(_INDIVIDUALS)))
            )
        else:
            data.add(
                Triple(subject, draw(st.sampled_from(_DATA_PROPERTIES)), draw(st.sampled_from(_LITERALS)))
            )
    return ontology, data


@st.composite
def random_bgp(draw):
    """A random BGP of 1-3 triple patterns over a small variable pool."""
    variables = [Variable(name) for name in ("x", "y", "z")]
    pattern_count = draw(st.integers(min_value=1, max_value=3))
    patterns = []
    for _ in range(pattern_count):
        subject = draw(st.one_of(st.sampled_from(variables), st.sampled_from(_INDIVIDUALS)))
        if draw(st.booleans()):
            predicate = RDF.type
            obj = draw(st.one_of(st.sampled_from(variables), st.sampled_from(_CONCEPTS)))
        else:
            predicate = draw(st.sampled_from(_PROPERTIES + _DATA_PROPERTIES))
            obj = draw(
                st.one_of(
                    st.sampled_from(variables),
                    st.sampled_from(_INDIVIDUALS),
                    st.sampled_from(_LITERALS),
                )
            )
        patterns.append(TriplePattern(subject, predicate, obj))
    return patterns


def _project(bindings, names):
    return {tuple(binding.get(name) for name in names) for binding in bindings}


@settings(max_examples=40, deadline=None)
@given(dataset=random_dataset(), patterns=random_bgp())
def test_differential_plain_bgp(dataset, patterns):
    """Without reasoning, all three implementations agree on every BGP."""
    ontology, data = dataset
    names = sorted({name for pattern in patterns for name in pattern.variable_names()})
    query = SelectQuery(
        projection=[Variable(name) for name in names] or None,
        where=GroupGraphPattern(bgp=BasicGraphPattern(patterns=list(patterns))),
    )

    succinct = SuccinctEdge.from_graph(data, ontology=ontology)
    baseline = MultiIndexMemoryStore()
    baseline.load(data, ontology=ontology)

    expected = _project(naive_bgp_bindings(data, list(patterns)), names)
    assert _project(succinct.query(query, reasoning=False), names) == expected
    assert _project(baseline.query(query, reasoning=False), names) == expected


@settings(max_examples=25, deadline=None)
@given(dataset=random_dataset(), patterns=random_bgp())
def test_differential_reasoning_bgp(dataset, patterns):
    """With reasoning, LiteMat intervals agree with the materialised closure."""
    ontology, data = dataset
    names = sorted({name for pattern in patterns for name in pattern.variable_names()})
    query = SelectQuery(
        projection=[Variable(name) for name in names] or None,
        where=GroupGraphPattern(bgp=BasicGraphPattern(patterns=list(patterns))),
    )

    succinct = SuccinctEdge.from_graph(data, ontology=ontology)
    schema = OntologySchema.from_graph(ontology)
    closure = hierarchy_closure(data, schema)

    expected = _project(naive_bgp_bindings(closure, list(patterns)), names)
    actual = _project(succinct.query(query, reasoning=True), names)
    assert actual == expected


# --------------------------------------------------------------------------- #
# process execution backend vs the materializing oracle
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def worker_pool():
    """One worker pool shared by every fuzz example.

    Tasks carry their own attach spec, so the pool is store-agnostic:
    each example's engine ships its own freshly saved image (engines own a
    private workspace, so image paths — and with them the workers' attach
    tokens — never collide between examples).  Sharing the pool means the
    workers fork exactly once for the whole run.
    """
    from repro.query.multiproc import WorkerPool

    pool = WorkerPool(max_workers=2)
    yield pool
    pool.close()


def _multiset(result, names):
    return Counter(tuple(binding.get(name) for name in names) for binding in result)


@settings(max_examples=20, deadline=None)
@given(dataset=random_dataset(), patterns=random_bgp(), reasoning=st.booleans())
def test_differential_process_backend(worker_pool, dataset, patterns, reasoning):
    """The process backend agrees with the materializing oracle on any BGP.

    The oracle is a genuinely independent evaluation strategy (fully
    materialized operators in the coordinator process); the process engine
    answers from workers that attached to a saved image of the same store.
    Multiset equality over the projected rows is the bar — it catches
    dropped rows, duplicated rows and wrong bindings alike.
    """
    from repro.query.materializing import MaterializingQueryEngine
    from repro.query.multiproc import ProcessPoolQueryEngine

    ontology, data = dataset
    names = sorted({name for pattern in patterns for name in pattern.variable_names()})
    query = SelectQuery(
        projection=[Variable(name) for name in names] or None,
        where=GroupGraphPattern(bgp=BasicGraphPattern(patterns=list(patterns))),
    )

    store = SuccinctEdge.from_graph(data, ontology=ontology)
    oracle = MaterializingQueryEngine(store, reasoning=reasoning)
    expected = _multiset(oracle.execute(query), names)
    engine = ProcessPoolQueryEngine(
        store, reasoning=reasoning, batch_size=3, pool=worker_pool
    )
    try:
        assert _multiset(engine.execute(query), names) == expected
    finally:
        engine.close()


# --------------------------------------------------------------------------- #
# replication fuzzing (repro.serve.cluster)
# --------------------------------------------------------------------------- #


def _store_scan_multiset(store, reasoning=False):
    """Every triple in ``store`` as a multiset, via exhaustive pattern scans.

    One ``?x p ?y`` scan per property plus one ``?x rdf:type ?c`` scan
    enumerates the full dataset (the fuzz vocabulary is closed), giving a
    store-independent way to compare a replica against its primary.
    """
    from repro.query.materializing import MaterializingQueryEngine

    engine = MaterializingQueryEngine(store, reasoning=reasoning)
    x, y = Variable("x"), Variable("y")
    counts = Counter()
    for predicate in _PROPERTIES + _DATA_PROPERTIES:
        query = SelectQuery(
            projection=[x, y],
            where=GroupGraphPattern(
                bgp=BasicGraphPattern(patterns=[TriplePattern(x, predicate, y)])
            ),
        )
        for binding in engine.execute(query):
            counts[(predicate.value, binding.get("x"), binding.get("y"))] += 1
    query = SelectQuery(
        projection=[x, y],
        where=GroupGraphPattern(
            bgp=BasicGraphPattern(patterns=[TriplePattern(x, RDF.type, y)])
        ),
    )
    for binding in engine.execute(query):
        counts[(RDF.type.value, binding.get("x"), binding.get("y"))] += 1
    return counts


@st.composite
def replication_script(draw):
    """A random interleaving of writes, compactions and replica syncs.

    ``("insert"|"delete", triple)`` mutate the primary (deleting an absent
    triple is a no-op, which is itself worth covering), ``("sync", None)``
    ships the log suffix to the replica mid-stream, and the rare
    ``("compact", None)`` rotates the primary's generation so the replica
    must detect the stale image and re-bootstrap.
    """
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        kind = draw(
            st.sampled_from(
                ["insert", "insert", "insert", "delete", "sync", "compact"]
            )
        )
        if kind in ("insert", "delete"):
            subject = draw(st.sampled_from(_INDIVIDUALS))
            shape = draw(st.integers(min_value=0, max_value=2))
            if shape == 0:
                triple = Triple(subject, RDF.type, draw(st.sampled_from(_CONCEPTS)))
            elif shape == 1:
                triple = Triple(
                    subject,
                    draw(st.sampled_from(_PROPERTIES)),
                    draw(st.sampled_from(_INDIVIDUALS)),
                )
            else:
                triple = Triple(
                    subject,
                    draw(st.sampled_from(_DATA_PROPERTIES)),
                    draw(st.sampled_from(_LITERALS)),
                )
            ops.append((kind, triple))
        else:
            ops.append((kind, None))
    return ops


@settings(max_examples=15, deadline=None)
@given(dataset=random_dataset(), script=replication_script())
def test_differential_replication_convergence(dataset, script):
    """After any write/ship/query interleaving the replica equals the primary.

    A replica driven through :class:`~repro.serve.cluster.LocalReplicationClient`
    (the same wire documents as HTTP, minus the socket) bootstraps from the
    primary's image and replays whatever log suffix each mid-stream sync
    finds.  Once converged it must sit at the primary's exact position and
    hold the **same triple multiset** — across inserts, deletes, no-op
    deletes, mid-stream syncs and even generation-rotating compactions.
    """
    import shutil
    import tempfile

    from repro.serve.cluster import ClusterReplica, LocalReplicationClient, ReplicationSource
    from repro.store.updatable import UpdatableSuccinctEdge

    ontology, data = dataset
    primary = UpdatableSuccinctEdge.from_graph(data, ontology=ontology)
    workspace = tempfile.mkdtemp(prefix="fuzz-repl-")
    try:
        source = ReplicationSource(primary, workspace=workspace + "/ship")
        replica = ClusterReplica(
            LocalReplicationClient(source), workspace + "/replica"
        ).bootstrap()
        for kind, triple in script:
            if kind == "insert":
                primary.insert(triple)
            elif kind == "delete":
                primary.delete(triple)
            elif kind == "compact":
                primary.compact()
            else:
                replica.sync()
        generation, epoch = source.position()
        replica.sync(upto_epoch=epoch)
        assert (replica.generation, replica.epoch) == (generation, epoch)
        assert _store_scan_multiset(replica.store) == _store_scan_multiset(primary)
        source.close()
    finally:
        shutil.rmtree(workspace, ignore_errors=True)


# --------------------------------------------------------------------------- #
# property-path fuzzing (repro.query.paths vs the naive oracle)
# --------------------------------------------------------------------------- #

from repro.sparql.ast import (  # noqa: E402  (section-local, keeps the BGP half standalone)
    PathAlternative,
    PathInverse,
    PathLink,
    PathNegatedSet,
    PathOneOrMore,
    PathSequence,
    PathZeroOrMore,
    PathZeroOrOne,
    PropertyPathPattern,
)

_PATH_PREDICATES = _PROPERTIES + _DATA_PROPERTIES
#: A term that never appears in any random dataset — SPARQL's zero-length
#: paths must still match it to itself (§9.3 ALP starts from the given term).
_GHOST = EX["ghost"]


@st.composite
def random_path(draw, depth: int = 3):
    """A random path expression of operator-nesting depth ≤ ``depth`` + leaf.

    The distribution leans toward links (so most paths stay satisfiable)
    but every operator of the grammar — inverse, sequence, alternation,
    ``?``/``*``/``+`` and negated property sets with forward *and* inverse
    members — appears under every other operator, including closures over
    alternations (the id-steppable fast path) and closures over sequences
    (the term-level fallback).
    """
    if depth <= 0:
        return PathLink(draw(st.sampled_from(_PATH_PREDICATES)))
    kind = draw(
        st.sampled_from(
            [
                "link",
                "link",
                "inverse",
                "sequence",
                "alternative",
                "zero-or-one",
                "zero-or-more",
                "one-or-more",
                "negated",
            ]
        )
    )
    if kind == "link":
        return PathLink(draw(st.sampled_from(_PATH_PREDICATES)))
    if kind == "inverse":
        return PathInverse(draw(random_path(depth=depth - 1)))
    if kind == "sequence":
        count = draw(st.integers(min_value=2, max_value=3))
        return PathSequence(tuple(draw(random_path(depth=depth - 1)) for _ in range(count)))
    if kind == "alternative":
        count = draw(st.integers(min_value=2, max_value=3))
        return PathAlternative(tuple(draw(random_path(depth=depth - 1)) for _ in range(count)))
    if kind == "zero-or-one":
        return PathZeroOrOne(draw(random_path(depth=depth - 1)))
    if kind == "zero-or-more":
        return PathZeroOrMore(draw(random_path(depth=depth - 1)))
    if kind == "one-or-more":
        return PathOneOrMore(draw(random_path(depth=depth - 1)))
    forward = tuple(draw(st.lists(st.sampled_from(_PATH_PREDICATES), max_size=3)))
    inverse = tuple(draw(st.lists(st.sampled_from(_PATH_PREDICATES), max_size=2)))
    if not forward and not inverse:
        forward = (draw(st.sampled_from(_PATH_PREDICATES)),)
    return PathNegatedSet(forward=forward, inverse=inverse)


@st.composite
def random_path_pattern(draw):
    """A random path pattern: random endpoints around a random path.

    Endpoint shapes cover all four bound/unbound combinations, the diagonal
    ``?x path ?x`` (both slots one variable), literal objects and the
    off-graph ghost term on either side.
    """
    x, y = Variable("x"), Variable("y")
    subject = draw(
        st.one_of(
            st.sampled_from([x, x, y]),
            st.sampled_from(_INDIVIDUALS),
            st.just(_GHOST),
        )
    )
    obj = draw(
        st.one_of(
            st.sampled_from([y, y, x]),
            st.sampled_from(_INDIVIDUALS),
            st.sampled_from(_LITERALS),
            st.just(_GHOST),
        )
    )
    return PropertyPathPattern(subject, draw(random_path(depth=3)), obj)


def _path_query(pattern: PropertyPathPattern) -> SelectQuery:
    names = sorted(set(pattern.variable_names()))
    return SelectQuery(
        projection=[Variable(name) for name in names] or None,
        where=GroupGraphPattern(paths=[pattern]),
    )


def _check_path_example(dataset, pattern, reasoning):
    """One fuzz example: streaming interval-BFS vs the naive oracle."""
    from repro.query.engine import QueryEngine
    from repro.query.materializing import MaterializingQueryEngine

    ontology, data = dataset
    store = SuccinctEdge.from_graph(data, ontology=ontology)
    query = _path_query(pattern)
    names = sorted(set(pattern.variable_names()))
    expected = _multiset(MaterializingQueryEngine(store, reasoning=reasoning).execute(query), names)
    actual = _multiset(QueryEngine(store, reasoning=reasoning).execute(query), names)
    assert actual == expected


@settings(max_examples=40, deadline=None)
@given(dataset=random_dataset(), pattern=random_path_pattern(), reasoning=st.booleans())
def test_differential_path_fuzzing(dataset, pattern, reasoning):
    """Any path over any graph: production must equal the naive fixpoint.

    The datasets freely contain cycles (properties connect arbitrary
    individuals), so this continuously exercises cycle-safe termination;
    multiset equality over the projected rows catches dropped solutions,
    duplicate solutions (the ``?``/``*``/``+`` forms are DISTINCT, the
    algebraic forms are not) and wrong bindings alike.
    """
    _check_path_example(dataset, pattern, reasoning)


@settings(max_examples=30, deadline=None)
@given(
    dataset=random_dataset(),
    inner=random_path(depth=2),
    start=st.sampled_from(_INDIVIDUALS + [_GHOST]),
    closure_kind=st.sampled_from([PathZeroOrMore, PathZeroOrOne]),
    direction=st.sampled_from(["forward", "backward", "diagonal"]),
    reasoning=st.booleans(),
)
def test_differential_zero_length_paths(dataset, inner, start, closure_kind, direction, reasoning):
    """Zero-length semantics on bound and unbound endpoints, incl. off-graph.

    ``start p* ?o`` must emit ``start`` itself even when ``start`` appears
    in no triple (the ghost), ``?s p* end`` symmetrically, and the fully
    bound ``start p* start`` always holds — exactly what the spec's ALP
    procedure produces and a naive "filter the closure relation" gets wrong.
    """
    path = closure_kind(inner)
    if direction == "forward":
        pattern = PropertyPathPattern(start, path, Variable("o"))
    elif direction == "backward":
        pattern = PropertyPathPattern(Variable("s"), path, start)
    else:
        pattern = PropertyPathPattern(start, path, start)
    _check_path_example(dataset, pattern, reasoning)


@pytest.mark.slow
@settings(max_examples=250, deadline=None)
@given(dataset=random_dataset(), pattern=random_path_pattern(), reasoning=st.booleans())
def test_differential_path_fuzzing_deep(dataset, pattern, reasoning):
    """The raised-example-count sweep for the dedicated CI paths job."""
    _check_path_example(dataset, pattern, reasoning)
