"""Fork safety: module-level state must not leak into worker processes.

The process backend defaults to ``fork`` workers, so every piece of
module-level mutable state in the coordinator is silently duplicated into
each worker.  Two of them would corrupt results if left alone:

* the **kernel-call counters** (:data:`repro.sds.kernels.KERNEL_COUNTS`) —
  a forked worker inherits the parent's mid-benchmark counts, and since
  workers report per-task *deltas* that the coordinator folds back in, an
  inherited baseline would double-count the parent's own work;
* the **LRU caches** (:class:`repro.caching.LruCache`) — a fork can catch
  a cache mid-``put`` in another thread, leaving the child a permanently
  held lock (the classic fork deadlock) and a half-mutated entry map.

Both register ``os.register_at_fork`` hooks; these tests pin that the
hooks actually run and actually reset.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.caching import LruCache
from repro.sds.kernels import KERNEL_COUNTS, kernel_counters, merge_kernel_counters

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based workers need os.fork"
)


def _child_counter_snapshot(queue):
    queue.put(kernel_counters())


def _child_cache_probe(cache, queue):
    # The parent seeded this cache; after the at-fork reset the child must
    # see an empty, *usable* cache (a held inherited lock would hang here).
    hit, _ = cache.get("seeded")
    cache.put("child", 1)
    queue.put((hit, len(cache)))


def _prime_parent_counters(store) -> None:
    """Run one real query so the parent's counters are decidedly non-zero."""
    store.query(
        """
        SELECT ?x ?n WHERE {
          ?x a <http://swat.cse.lehigh.edu/onto/univ-bench.owl#FullProfessor> .
          ?x <http://swat.cse.lehigh.edu/onto/univ-bench.owl#name> ?n .
        }
        """
    )


def test_forked_worker_kernel_counters_start_at_zero(small_lubm_store):
    _prime_parent_counters(small_lubm_store)
    parent = kernel_counters()
    assert sum(parent.values()) > 0
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    child = context.Process(target=_child_counter_snapshot, args=(queue,))
    child.start()
    snapshot = queue.get(timeout=30)
    child.join(timeout=30)
    assert sum(snapshot.values()) == 0, f"forked child inherited counts: {snapshot}"
    # The parent keeps its own counts untouched.
    assert kernel_counters() == parent


def test_forked_worker_via_pool_reports_zero_counters(small_lubm_store, tmp_path):
    # End to end through the real worker pool: the "counters" op returns
    # the worker's counters, which must start from the initializer's reset
    # state, not the coordinator's live totals.
    from repro.query.multiproc import ProcessPoolQueryEngine

    _prime_parent_counters(small_lubm_store)
    assert sum(kernel_counters().values()) > 0
    engine = ProcessPoolQueryEngine(
        small_lubm_store, max_workers=1, workspace=str(tmp_path / "spill")
    )
    try:
        spec = engine.evaluator._attach_spec()
        snapshot = engine.pool.result(engine.pool.submit(spec, "counters", ()))
        assert sum(snapshot.values()) == 0, f"worker booted with counts: {snapshot}"
    finally:
        engine.close()


def test_forked_child_gets_fresh_caches():
    cache = LruCache(capacity=8)
    cache.put("seeded", "value")
    assert len(cache) == 1
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    child = context.Process(target=_child_cache_probe, args=(cache, queue))
    child.start()
    hit, size = queue.get(timeout=30)
    child.join(timeout=30)
    assert hit is False, "forked child served a stale pre-fork cache entry"
    assert size == 1  # only the child's own put
    # The parent cache is untouched by the child's reset.
    hit, value = cache.get("seeded")
    assert hit and value == "value"


def test_merge_kernel_counters_folds_deltas():
    before = kernel_counters().get("rank", 0)
    merge_kernel_counters({"rank": 3, "made_up_kernel": 2})
    try:
        assert kernel_counters()["rank"] == before + 3
        assert kernel_counters()["made_up_kernel"] == 2
    finally:
        KERNEL_COUNTS["made_up_kernel"] = 0
        KERNEL_COUNTS["rank"] = before
