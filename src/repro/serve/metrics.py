"""Admission and latency metrics for the query service.

Counters cover the admission outcomes (completed / cache hits / rejected /
timed out / errored) plus a bounded latency reservoir from which p50/p99 are
computed.  Everything is guarded by one lock; :meth:`ServingMetrics.snapshot`
returns a consistent plain-dict view for the ``/metrics`` endpoint, the
benchmark and the tests.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List


class ServingMetrics:
    """Thread-safe serving counters with latency percentiles."""

    def __init__(self, reservoir_size: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latencies_ms: Deque[float] = deque(maxlen=reservoir_size)
        self.received = 0
        self.completed = 0
        self.cache_hits = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        self.in_flight = 0
        self.peak_in_flight = 0

    # admission lifecycle ------------------------------------------------ #

    def record_admission(self) -> None:
        """One request entered execution (after passing admission control)."""
        with self._lock:
            self.received += 1
            self.in_flight += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight

    def record_completion(self, elapsed_ms: float, cached: bool) -> None:
        """One request finished successfully."""
        with self._lock:
            self.completed += 1
            self.in_flight -= 1
            if cached:
                self.cache_hits += 1
            self._latencies_ms.append(elapsed_ms)

    def record_rejection(self) -> None:
        """One request was turned away by admission control."""
        with self._lock:
            self.received += 1
            self.rejected += 1

    def record_timeout(self) -> None:
        """One admitted request exceeded its deadline."""
        with self._lock:
            self.timeouts += 1
            self.in_flight -= 1

    def record_queue_timeout(self) -> None:
        """One request's deadline expired while waiting for a worker slot."""
        with self._lock:
            self.received += 1
            self.timeouts += 1

    def record_error(self) -> None:
        """One admitted request failed (parse error, internal error)."""
        with self._lock:
            self.errors += 1
            self.in_flight -= 1

    # reporting ----------------------------------------------------------- #

    @staticmethod
    def _quantile(ordered: List[float], fraction: float) -> float:
        """The single quantile formula both accessors share (0.0 when empty)."""
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return ordered[index]

    def percentile(self, fraction: float) -> float:
        """Latency percentile (``fraction`` in [0, 1]) over the reservoir."""
        with self._lock:
            ordered: List[float] = sorted(self._latencies_ms)
        return self._quantile(ordered, fraction)

    def snapshot(self) -> Dict[str, float]:
        """A consistent plain-dict view of every counter plus p50/p99."""
        with self._lock:
            ordered = sorted(self._latencies_ms)
            counters = {
                "received": self.received,
                "completed": self.completed,
                "cache_hits": self.cache_hits,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
            }
        counters["latency_p50_ms"] = self._quantile(ordered, 0.50)
        counters["latency_p99_ms"] = self._quantile(ordered, 0.99)
        counters["latency_mean_ms"] = sum(ordered) / len(ordered) if ordered else 0.0
        return counters

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"ServingMetrics({snap['completed']} completed, "
            f"{snap['cache_hits']} cache hits, {snap['rejected']} rejected, "
            f"p50={snap['latency_p50_ms']:.2f}ms)"
        )
