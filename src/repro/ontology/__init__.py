"""Ontology substrate: RDFS schema extraction, LiteMat encoding, ρdf reasoning.

SuccinctEdge performs RDFS (ρdf subset) reasoning at query time through the
LiteMat semantic-aware encoding: concept and property identifiers embed the
identifier of their direct parent, so the full set of direct and indirect
sub-entities of a term maps to one contiguous identifier interval (paper
Section 3.2).  The baselines reason instead by rewriting queries into UNIONs
of non-inferential queries (:mod:`repro.ontology.rewriting`), and the
materialisation rules of ρdf (:mod:`repro.ontology.rhodf`) serve as the
ground-truth oracle in tests.
"""

from repro.ontology.schema import OntologySchema
from repro.ontology.litemat import LiteMatEncoder, LiteMatEncoding, EncodedEntity
from repro.ontology.rhodf import materialize_rhodf, saturate_types
from repro.ontology.rewriting import rewrite_query_with_unions

__all__ = [
    "EncodedEntity",
    "LiteMatEncoder",
    "LiteMatEncoding",
    "OntologySchema",
    "materialize_rhodf",
    "rewrite_query_with_unions",
    "saturate_types",
]
