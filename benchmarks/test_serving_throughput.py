"""Serving throughput: queries/sec vs worker count and shard count.

The scale-out PR's headline experiment.  A closed loop of client threads
replays the :class:`~repro.workloads.serving.ServingWorkload` interactive
mix over HTTP against a :class:`~repro.serve.server.QueryServer` whose
``worker_slots`` bound is the variable under test.

**Methodology (read before quoting the numbers).**  Responses are delivered
over a :class:`~repro.edge.device.SimulatedNetwork` with the ``EDGE_UPLINK``
profile (40 ms RTT, 0.5 Mbit/s) — the paper's deployment serves clients from a
constrained edge device, and response transmission is the dominant
per-request cost there.  A worker transmitting blocks with the GIL released
(in the simulation: a sleep; on real hardware: ``socket.send`` to a slow
client), which is precisely the time a worker pool overlaps.  On this
single-core CPython host the *compute* portion cannot scale with threads —
the LAN control rows make that visible (flat scaling, GIL-bound), and
``docs/performance.md`` explains how to read both tables together.

Experiments, all at LUBM medium scale:

1. queries/sec vs worker count (1/2/4) over the edge uplink + LAN control;
2. queries/sec vs shard count (1/2/4) at 4 workers (sharded stores run the
   :class:`~repro.query.parallel.ParallelQueryEngine`);
3. the result cache on the same mix (hit rate, speedup) and its epoch
   invalidation under a write trickle.

Results land in ``benchmarks/results/serving_throughput.txt``.
"""

from __future__ import annotations

import os
import queue
import threading
import time

import pytest

from repro.bench.harness import format_table, record_table
from repro.edge.device import EDGE_UPLINK, SimulatedNetwork
from repro.serve import QueryServer, QueryService, SparqlClient
from repro.store.sharding import ShardedStore
from repro.store.succinct_edge import SuccinctEdge
from repro.workloads.serving import ServingWorkload

#: Queries replayed per configuration (weighted sample with repetition).
_TOTAL_QUERIES = 48

#: Closed-loop client threads (kept above the largest worker count so the
#: server-side worker bound is what limits concurrency).
_CLIENTS = 8

_WORKER_COUNTS = (1, 2, 4)
_SHARD_COUNTS = (1, 2, 4)


def _drive(server_url: str, queries, clients: int):
    """Replay ``queries`` through ``clients`` closed-loop threads."""
    work: "queue.Queue" = queue.Queue()
    for query in queries:
        work.put(query)
    errors = []

    def client_loop() -> None:
        client = SparqlClient(server_url, timeout_s=600)
        while True:
            try:
                query = work.get_nowait()
            except queue.Empty:
                return
            document = client.query(query.sparql, reasoning=query.requires_reasoning)
            if document["_status"] != 200:
                errors.append(document)

    threads = [threading.Thread(target=client_loop, daemon=True) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, f"{len(errors)} requests failed: {errors[:2]}"
    return elapsed


def _measure(store, queries, workers: int, parallel: bool, cache: bool, network_profile,
             backend=None, process_workers=None):
    """One configuration: queries/sec plus the service's latency percentiles."""
    service = QueryService(
        store,
        parallel=parallel,
        backend=backend,
        process_workers=process_workers,
        worker_slots=workers,
        max_pending=len(queries) + _CLIENTS,
        cache_capacity=256 if cache else 0,
        default_timeout_s=600,
    )
    network = SimulatedNetwork(network_profile) if network_profile is not None else None
    try:
        with QueryServer(service, network=network) as server:
            elapsed = _drive(server.url, queries, _CLIENTS)
        snapshot = service.metrics.snapshot()
        return {
            "qps": len(queries) / elapsed,
            "p50": snapshot["latency_p50_ms"],
            "p99": snapshot["latency_p99_ms"],
            "hit_rate": (service.cache.hit_rate if service.cache else 0.0),
        }
    finally:
        service.close()


def test_serving_throughput(context, results_dir):
    workload = ServingWorkload(context.lubm)
    queries = workload.sample_queries(_TOTAL_QUERIES, seed=101)
    store = SuccinctEdge.from_graph(context.lubm.graph, ontology=context.lubm.ontology)

    # ---------------------------------------------------------------- #
    # 1. worker scaling, edge uplink + LAN control
    # ---------------------------------------------------------------- #
    edge_rows = {}
    lan_rows = {}
    # The LAN control has no transmission time, so a 10x larger sample keeps
    # its elapsed wall-clock well above scheduling noise.
    lan_queries = workload.sample_queries(_TOTAL_QUERIES * 10, seed=103)
    for workers in _WORKER_COUNTS:
        edge = _measure(store, queries, workers, parallel=False, cache=False,
                        network_profile=EDGE_UPLINK)
        edge_rows[f"{workers} worker(s)"] = [edge["qps"], edge["p50"], edge["p99"]]
        lan = _measure(store, lan_queries, workers, parallel=False, cache=False,
                       network_profile=None)
        lan_rows[f"{workers} worker(s)"] = [lan["qps"], lan["p50"], lan["p99"]]

    speedup = edge_rows["4 worker(s)"][0] / edge_rows["1 worker(s)"][0]
    assert speedup >= 2.0, (
        f"4 workers deliver {speedup:.2f}x the 1-worker throughput over the "
        "edge uplink; expected at least 2x from overlapped transmissions"
    )

    # ---------------------------------------------------------------- #
    # 2. shard scaling at 4 workers
    # ---------------------------------------------------------------- #
    shard_rows = {}
    for shards in _SHARD_COUNTS:
        if shards == 1:
            target, parallel = store, False
        else:
            target, parallel = ShardedStore.from_store(store, shards=shards), True
        result = _measure(target, queries, workers=4, parallel=parallel, cache=False,
                          network_profile=EDGE_UPLINK)
        label = f"{shards} shard(s)" + (" +par" if parallel else "")
        shard_rows[label] = [result["qps"], result["p50"], result["p99"]]

    # ---------------------------------------------------------------- #
    # 3. the result cache on the same mix
    # ---------------------------------------------------------------- #
    cache_rows = {}
    for cache in (False, True):
        result = _measure(store, queries, workers=4, parallel=False, cache=cache,
                          network_profile=EDGE_UPLINK)
        cache_rows["cache on" if cache else "cache off"] = [
            result["qps"], result["p50"], result["p99"], result["hit_rate"],
        ]

    # ---------------------------------------------------------------- #
    # record
    # ---------------------------------------------------------------- #
    dataset_note = (
        f"LUBM medium scale: {len(context.lubm.graph)} triples, "
        f"{_TOTAL_QUERIES} queries from the interactive mix, "
        f"{_CLIENTS} closed-loop clients"
    )
    worker_table = format_table(
        f"Serving throughput vs worker count — edge uplink "
        f"({EDGE_UPLINK.rtt_ms:.0f}ms RTT, {EDGE_UPLINK.bandwidth_kbps:.0f}kbps)",
        ["queries/sec", "p50 ms", "p99 ms"],
        edge_rows,
    )
    lan_table = format_table(
        "Control: same run on an instant link (no transmission to overlap; "
        "compute serialises on the GIL of this single-core host)",
        ["queries/sec", "p50 ms", "p99 ms"],
        lan_rows,
    )
    shard_table = format_table(
        "Throughput vs shard count at 4 workers (ParallelQueryEngine on shards)",
        ["queries/sec", "p50 ms", "p99 ms"],
        shard_rows,
    )
    cache_table = format_table(
        "Result cache on the interactive mix (4 workers, edge uplink)",
        ["queries/sec", "p50 ms", "p99 ms", "hit rate"],
        cache_rows,
    )
    summary = "\n".join(
        [
            dataset_note,
            f"4-worker vs 1-worker speedup over the edge uplink: {speedup:.2f}x "
            "(acceptance bar: >= 2x)",
            "Interpretation: workers overlap response transmission (GIL released "
            "while blocked on the link); compute itself is GIL-serialised in "
            "CPython, so the LAN control stays flat — see docs/performance.md.",
        ]
    )
    record_table(
        results_dir,
        "serving_throughput",
        "\n\n".join([worker_table, lan_table, shard_table, cache_table, summary]),
    )


def test_serving_throughput_multiproc(context, results_dir):
    """Process-backend LAN control: compute scaling with worker processes.

    The thread benchmark above shows the LAN control flat — compute
    serialises on the GIL.  The process backend is the configuration that
    is *supposed* to move that row: worker processes mmap the store image
    and run the kernels on real cores.  Same workload, same instant link,
    variable = worker-process count; the acceptance bar (>= 2x at 4 vs 1
    process) only applies on a host with >= 4 CPUs — on fewer cores the
    table is still recorded, honestly labelled, and the bar is skipped.
    """
    workload = ServingWorkload(context.lubm)
    store = SuccinctEdge.from_graph(context.lubm.graph, ontology=context.lubm.ontology)
    lan_queries = workload.sample_queries(_TOTAL_QUERIES * 2, seed=107)

    rows = {}
    for processes in _WORKER_COUNTS:
        result = _measure(
            store, lan_queries, workers=4, parallel=False, cache=False,
            network_profile=None, backend="process", process_workers=processes,
        )
        rows[f"{processes} process(es)"] = [result["qps"], result["p50"], result["p99"]]

    speedup = rows["4 process(es)"][0] / rows["1 process(es)"][0]
    cpus = os.cpu_count() or 1
    table = format_table(
        "Process backend on an instant link (LAN control): queries/sec vs "
        f"worker processes, 4 worker slots, host has {cpus} CPU(s)",
        ["queries/sec", "p50 ms", "p99 ms"],
        rows,
    )
    summary = "\n".join(
        [
            f"LUBM scale: {len(context.lubm.graph)} triples, "
            f"{len(lan_queries)} queries, {_CLIENTS} closed-loop clients",
            f"4-process vs 1-process speedup on the LAN control: {speedup:.2f}x "
            f"(acceptance bar >= 2x, applied only on >= 4-CPU hosts; this host: {cpus})",
            "Interpretation: worker processes attach to the mmap'd store image and "
            "run the SDS kernels outside the coordinator's GIL — this is the row "
            "threads cannot move; see docs/performance.md (Multicore execution).",
        ]
    )
    # Record first: the table is evidence either way, including on hosts
    # where the scaling bar cannot honestly be applied.
    record_table(results_dir, "serving_throughput_multiproc", "\n\n".join([table, summary]))

    if cpus < 4:
        pytest.skip(
            f"process-scaling acceptance bar needs >= 4 CPUs; host has {cpus} "
            "(table recorded in serving_throughput_multiproc.txt)"
        )
    assert speedup >= 2.0, (
        f"4 worker processes deliver {speedup:.2f}x the 1-process throughput on "
        "an instant link; expected >= 2x from multi-core kernel execution"
    )
