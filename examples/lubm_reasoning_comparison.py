"""LUBM reasoning: LiteMat intervals vs UNION rewriting vs no reasoning.

Generates a LUBM dataset, loads it into SuccinctEdge and into the in-memory
multi-index baseline, and compares three ways of answering the paper's
reasoning query R5 (members of sub-organizations of a university, where
``memberOf`` subsumes ``worksFor`` and ``headOf``):

* SuccinctEdge with LiteMat identifier intervals (native);
* the baseline with the UNION-of-subqueries rewriting the paper applies to
  the competitor systems;
* both engines without reasoning (to show what would be silently missed).

Run with::

    python examples/lubm_reasoning_comparison.py [departments]
"""

from __future__ import annotations

import sys
import time

from repro.baselines.multi_index_store import MultiIndexMemoryStore
from repro.ontology.rewriting import count_union_branches
from repro.sparql.parser import parse_query
from repro.store import SuccinctEdge
from repro.workloads.lubm import generate_lubm
from repro.workloads.queries import QueryCatalog


def timed(label: str, callable_):
    started = time.perf_counter()
    result = callable_()
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    print(f"  {label:<38} {len(result):>6} rows   {elapsed_ms:8.1f} ms")
    return result


def main() -> None:
    departments = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"Generating LUBM dataset with {departments} departments...")
    dataset = generate_lubm(departments=departments)
    print(f"  {dataset.triple_count} triples\n")

    print("Loading SuccinctEdge (LiteMat encoding + SDS layouts)...")
    started = time.perf_counter()
    succinct = SuccinctEdge.from_graph(dataset.graph, ontology=dataset.ontology)
    print(f"  built in {(time.perf_counter() - started) * 1000.0:.0f} ms, "
          f"footprint {succinct.memory_footprint_in_bytes() / 1024:.0f} KiB")

    print("Loading the multi-index in-memory baseline...")
    baseline = MultiIndexMemoryStore()
    baseline.load(dataset.graph, ontology=dataset.ontology)
    print(f"  footprint {baseline.memory_footprint_in_bytes() / 1024:.0f} KiB (modelled)\n")

    catalog = QueryCatalog(dataset)
    query = catalog.by_identifier()["R5"]
    parsed = parse_query(query.sparql)
    branches = count_union_branches(parsed, succinct.schema)
    print(f"Query R5 ({query.description})")
    print(f"  UNION rewriting would need {branches} sub-queries\n")

    litemat_rows = timed("SuccinctEdge, LiteMat intervals", lambda: succinct.query(query.sparql, reasoning=True))
    union_rows = timed("Baseline, UNION rewriting", lambda: baseline.query(query.sparql, reasoning=True))
    timed("SuccinctEdge, no reasoning", lambda: succinct.query(query.sparql, reasoning=False))
    timed("Baseline, no reasoning", lambda: baseline.query(query.sparql, reasoning=False))

    agreement = litemat_rows.to_set() == union_rows.to_set()
    print(f"\nLiteMat and UNION rewriting agree on the answer set: {agreement}")


if __name__ == "__main__":
    main()
