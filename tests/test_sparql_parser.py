"""Tests for the SPARQL parser (supported subset)."""

from __future__ import annotations

import pytest

from repro.rdf.namespaces import LUBM, RDF
from repro.rdf.terms import Literal, URI
from repro.sparql.ast import (
    Aggregate,
    Arithmetic,
    AskQuery,
    BooleanExpression,
    Comparison,
    FunctionCall,
    Variable,
)
from repro.sparql.parser import SparqlParseError, parse_query


class TestSelectClause:
    def test_projected_variables(self):
        query = parse_query("SELECT ?x ?y WHERE { ?x <http://p> ?y }")
        assert query.projected_names() == ["x", "y"]
        assert not query.distinct
        assert query.limit is None

    def test_select_star_projects_all_variables(self):
        query = parse_query("SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c }")
        assert query.projected_names() == ["a", "b", "c"]

    def test_distinct_flag(self):
        query = parse_query("SELECT DISTINCT ?x WHERE { ?x <http://p> ?y }")
        assert query.distinct

    def test_limit(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://p> ?y } LIMIT 7")
        assert query.limit == 7

    def test_missing_projection_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT WHERE { ?x <http://p> ?y }")

    def test_where_keyword_optional(self):
        query = parse_query("SELECT ?x { ?x <http://p> ?y }")
        assert len(query.triple_patterns) == 1

    def test_trailing_garbage_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y } nonsense extra")


class TestPrefixes:
    def test_declared_prefix_resolution(self):
        query = parse_query(
            "PREFIX ex: <http://example.org/>\nSELECT ?x WHERE { ?x ex:p ex:o }"
        )
        pattern = query.triple_patterns[0]
        assert pattern.predicate == URI("http://example.org/p")
        assert pattern.object == URI("http://example.org/o")

    def test_well_known_prefixes_preloaded(self):
        query = parse_query("SELECT ?x WHERE { ?x lubm:worksFor ?y }")
        assert query.triple_patterns[0].predicate == LUBM.worksFor

    def test_unknown_prefix_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?x WHERE { ?x zzz:p ?y }")


class TestTriplePatterns:
    def test_a_keyword_is_rdf_type(self):
        query = parse_query("SELECT ?x WHERE { ?x a <http://C> }")
        pattern = query.triple_patterns[0]
        assert pattern.predicate == RDF.type
        assert pattern.is_rdf_type

    def test_predicate_object_lists(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x a <http://C> ; <http://p> ?y , ?z . }"
        )
        assert len(query.triple_patterns) == 3

    def test_literal_objects(self):
        query = parse_query('SELECT ?x WHERE { ?x <http://p> "v" . ?x <http://q> 42 . ?x <http://r> 3.5 }')
        objects = [pattern.object for pattern in query.triple_patterns]
        assert objects[0] == Literal("v")
        assert objects[1].to_python() == 42
        assert objects[2].to_python() == pytest.approx(3.5)

    def test_shape_classification(self):
        query = parse_query("SELECT * WHERE { <http://s> <http://p> ?o . ?s <http://p> <http://o> . ?s <http://p> ?o }")
        shapes = [pattern.shape() for pattern in query.triple_patterns]
        assert shapes == ["s,p,?o", "?s,p,o", "?s,p,?o"]

    def test_variable_names(self):
        pattern = parse_query("SELECT * WHERE { ?s ?p ?o }").triple_patterns[0]
        assert pattern.variable_names() == ["s", "p", "o"]

    def test_full_iri_with_dots(self):
        query = parse_query(
            "SELECT * WHERE { <http://www.Department0.University0.edu/Publication14> <http://p> ?x }"
        )
        assert query.triple_patterns[0].subject.value.endswith("Publication14")


class TestFiltersAndBinds:
    def test_filter_comparison(self):
        query = parse_query("SELECT ?v WHERE { ?x <http://p> ?v . FILTER(?v > 4) }")
        expression = query.where.filters[0].expression
        assert isinstance(expression, Comparison)
        assert expression.operator == ">"

    def test_filter_boolean_combination(self):
        query = parse_query("SELECT ?v WHERE { ?x <http://p> ?v FILTER(?v < 3.0 || ?v > 4.5) }")
        expression = query.where.filters[0].expression
        assert isinstance(expression, BooleanExpression)
        assert expression.operator == "or"
        assert len(expression.operands) == 2

    def test_filter_regex_function(self):
        query = parse_query('SELECT ?u WHERE { ?x <http://p> ?u FILTER(regex(str(?u), "BAR")) }')
        expression = query.where.filters[0].expression
        assert isinstance(expression, FunctionCall)
        assert expression.name == "regex"

    def test_bind_with_nested_if(self):
        query = parse_query(
            'SELECT ?x WHERE { ?x <http://p> ?v BIND(if(?v > 1, ?v, ?v / 1000) AS ?w) }'
        )
        bind = query.where.binds[0]
        assert bind.variable == Variable("w")
        assert isinstance(bind.expression, FunctionCall)

    def test_arithmetic_precedence(self):
        query = parse_query("SELECT ?v WHERE { ?x <http://p> ?v FILTER(?v + 2 * 3 > 7) }")
        comparison = query.where.filters[0].expression
        assert isinstance(comparison.left, Arithmetic)
        assert comparison.left.operator == "+"
        assert isinstance(comparison.left.right, Arithmetic)
        assert comparison.left.right.operator == "*"

    def test_negation(self):
        query = parse_query("SELECT ?v WHERE { ?x <http://p> ?v FILTER(!bound(?y)) }")
        assert query.where.filters[0].expression is not None


class TestUnions:
    def test_two_branch_union(self):
        query = parse_query(
            "SELECT ?x WHERE { { ?x a <http://A> } UNION { ?x a <http://B> } }"
        )
        union = query.where.unions[0]
        assert len(union.branches) == 2
        assert union.branches[0].bgp.patterns[0].object == URI("http://A")

    def test_many_branch_union(self):
        query = parse_query(
            "SELECT ?x WHERE { { ?x a <http://A> } UNION { ?x a <http://B> } UNION { ?x a <http://C> } }"
        )
        assert len(query.where.unions[0].branches) == 3

    def test_union_with_surrounding_bgp(self):
        query = parse_query(
            "SELECT * WHERE { ?x <http://p> ?y . { ?x a <http://A> } UNION { ?x a <http://B> } }"
        )
        assert len(query.triple_patterns) == 1
        assert len(query.where.unions) == 1


class TestSparql11Forms:
    def test_optional_group(self):
        query = parse_query(
            "SELECT ?x ?n WHERE { ?x <http://p> ?y . OPTIONAL { ?x <http://n> ?n } }"
        )
        assert len(query.where.optionals) == 1
        assert len(query.where.optionals[0].bgp.patterns) == 1

    def test_nested_optional_with_filter(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x <http://p> ?v . OPTIONAL { ?x <http://q> ?w . FILTER(?w > 3) } }"
        )
        assert len(query.where.optionals[0].filters) == 1

    def test_order_by_directions(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x <http://p> ?v } ORDER BY DESC(?v) ?x ASC(?v)"
        )
        directions = [condition.descending for condition in query.order_by]
        assert directions == [True, False, False]

    def test_limit_offset_any_order(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://p> ?v } OFFSET 4 LIMIT 2")
        assert (query.limit, query.offset) == (2, 4)

    def test_group_by_with_aggregate_projection(self):
        query = parse_query(
            "SELECT ?d (COUNT(?x) AS ?n) WHERE { ?x <http://p> ?d } GROUP BY ?d"
        )
        assert query.group_by == [Variable("d")]
        assert query.aggregated
        item = query.select_expressions()[0]
        assert isinstance(item.expression, Aggregate)
        assert item.expression.name == "count"
        assert query.projected_names() == ["d", "n"]

    def test_count_star_and_distinct(self):
        query = parse_query("SELECT (COUNT(*) AS ?n) (SUM(DISTINCT ?v) AS ?s) WHERE { ?x <http://p> ?v }")
        star, summed = [item.expression for item in query.select_expressions()]
        assert star.expression is None and not star.distinct
        assert summed.distinct

    def test_values_single_variable(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x <http://p> ?v . VALUES ?v { 1 2 } }"
        )
        block = query.where.values[0]
        assert block.variable_names() == ["v"]
        assert len(block.rows) == 2

    def test_values_multi_variable_with_undef(self):
        query = parse_query(
            "SELECT * WHERE { ?x <http://p> ?y . VALUES (?x ?y) { (<http://a> UNDEF) } }"
        )
        block = query.where.values[0]
        assert block.rows == [(URI("http://a"), None)]

    def test_ask_form(self):
        query = parse_query("ASK { ?x <http://p> ?y }")
        assert isinstance(query, AskQuery)
        assert len(query.where.bgp.patterns) == 1

    def test_ask_without_where_keyword_and_with_it(self):
        assert isinstance(parse_query("ASK WHERE { ?x <http://p> ?y }"), AskQuery)


class TestParseErrors:
    """SparqlParseError must carry the line/column and the offending token."""

    def test_error_reports_line_and_column(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE {\n  ?x <http://p>\n}")
        error = info.value
        assert error.line == 3
        assert error.column == 1
        assert error.token == "}"
        assert "line 3, column 1" in str(error)

    def test_unknown_prefix_is_located(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE {\n?x zzz:p ?y }")
        assert info.value.line == 2
        assert info.value.token == "zzz:p"

    def test_tokenizer_error_is_located(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE { ?x <http://p> @@ }")
        assert info.value.line == 1
        assert info.value.token is not None

    def test_unexpected_end_of_query(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y ")
        assert "unterminated" in str(info.value) or "end of query" in str(info.value)

    def test_bad_limit_argument(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y } LIMIT -3")
        assert "non-negative integer" in str(info.value)

    def test_duplicate_limit_rejected(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y } LIMIT 1 LIMIT 2")
        assert "duplicate LIMIT" in str(info.value)

    def test_star_only_in_count(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT (SUM(*) AS ?s) WHERE { ?x <http://p> ?y }")
        assert "COUNT" in str(info.value)

    def test_values_row_arity_mismatch(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query(
                "SELECT * WHERE { ?x <http://p> ?y . VALUES (?x ?y) { (<http://a>) } }"
            )
        assert "VALUES row" in str(info.value)

    def test_variable_in_values_row_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT * WHERE { ?x <http://p> ?y . VALUES ?y { ?z } }")

    def test_group_by_without_condition(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y } GROUP BY")
        assert "GROUP BY" in str(info.value)

    def test_order_by_without_condition(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y } ORDER BY")
        assert "ORDER BY" in str(info.value)

    def test_trailing_tokens_are_located(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y } nonsense")
        assert info.value.token == "nonsense"

    def test_aggregate_in_filter_rejected(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y . FILTER(COUNT(?x) > 0) }")
        assert "FILTER" in str(info.value)

    def test_aggregate_in_bind_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?x WHERE { ?x <http://p> ?y . BIND(SUM(?y) AS ?s) }")

    def test_ungrouped_projected_variable_rejected(self):
        with pytest.raises(SparqlParseError) as info:
            parse_query(
                "SELECT ?x (COUNT(?x) AS ?n) WHERE { ?x <http://p> ?d } GROUP BY ?d"
            )
        assert "GROUP BY" in str(info.value)

    def test_select_star_with_group_by_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT * WHERE { ?x <http://p> ?d } GROUP BY ?d")


class TestMotivatingExample:
    def test_paper_section2_query_parses(self):
        from repro.workloads.engie import anomaly_detection_query

        query = parse_query(anomaly_detection_query())
        assert len(query.triple_patterns) == 11
        assert len(query.where.filters) == 1
        assert len(query.where.binds) == 1
        assert query.projected_names() == ["x", "s", "ts", "v1"]
