"""Distributed serving: delta-log replication and a scatter-gather coordinator.

This module turns the single-node serving stack into a small cluster:

* **Replication** (:class:`ReplicationSource` / :class:`ClusterReplica`) —
  a read replica bootstraps by downloading the primary's current v4 store
  image (one ``.sedg`` file, or a
  :meth:`~repro.store.sharding.ShardedStore.save_image_directory` tree) and
  stays fresh by pulling the **term-level delta-log suffix** it has not
  applied yet (``/replicate?generation=G&applied=N``, the HTTP face of
  :meth:`~repro.store.updatable.UpdatableSuccinctEdge.replication_slice`).
  Replaying the log through the replica's own ``insert``/``delete`` path
  reproduces dictionary and overflow identifier assignment *exactly* — the
  same idempotent-replay property the process execution backend
  (:mod:`repro.query.multiproc`) relies on — so id-level work units mean
  the same terms on the primary, on every replica, and on the coordinator.
* **Epoch-consistent reads** — a position in the replicated history is the
  pair ``(generation, epoch)``: the image generation (compaction epoch /
  image-directory generation; a bump means *re-bootstrap*) and the data
  epoch (applied write operations).  The coordinator pins one position per
  query and stamps it on every work unit; a replica serves a unit only at
  *exactly* that position — it syncs forward on demand (the pull is capped
  at the pinned epoch, so concurrently shipped writes never leak into an
  older query's rows) and answers **409 epoch conflict** when it has moved
  past it.  A conflict aborts the whole attempt before any row is
  surfaced; the engine re-pins at a fresh position and retries, so a query
  returns rows from one position or none at all — never a mix.
* **Scatter-gather coordination** (:class:`ClusterExecutor` /
  :class:`ClusterQueryEngine`) — the coordinator executes the *same*
  scatter plan as the thread and process backends (it subclasses
  :class:`~repro.query.parallel.ParallelExecutor`: same scatter decisions,
  same per-shard cardinality pruning, same windowed ordered drain), but
  ships each work unit as an HTTP call to a replica.  Replies are merged
  in the monolithic property-major, shard-minor order, so results stay
  byte-identical to the sequential engine.
* **Failure handling** (:class:`ReplicaSet`) — per-replica health flags
  (a transport failure marks the replica down; ``refresh_health`` probes
  ``/cluster/health`` to readmit it), shard-affine routing with failover
  to peers, **hedged retries** (a unit unanswered after ``hedge_after_s``
  is also sent to the next candidate; first success wins) and a
  coordinator-side deadline (:class:`ClusterTimeout`, never retried).
  Every hop — request and response — can be charged to a
  :class:`~repro.edge.device.SimulatedNetwork`, whose partition and drop
  knobs are what the fault-injection suite drives.

Wire format: coordinator→replica requests are **self-contained** (terms by
value — the coordinator's dictionary may have grown past the pinned epoch,
so its identifiers are not safe to ship), while replica→coordinator rows
reuse the id-level codec of :mod:`repro.query.multiproc` — identifiers the
replica assigned at epoch ``E`` are exactly the coordinator's identifiers
at ``E``, and the coordinator's dictionary only ever grows.

Known limits, stated honestly: coordinator-local probes (bound-subject
lookups the scatter planner prunes to one shard) read the primary live,
exactly like the monolithic engine mid-write; and two concurrent queries
pinned at different epochs sharing one replica can force clean 409/retry
cycles — never wrong rows.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.edge.device import NetworkPartitioned, SimulatedNetwork
from repro.query.engine import QueryEngine
from repro.query.multiproc import (
    _decode_binding,
    _decode_pattern,
    _decode_term,
    _encode_binding,
    _encode_term,
)
from repro.query.parallel import DEFAULT_BATCH_SIZE, ParallelExecutor
from repro.query.tp_eval import TriplePatternEvaluator
from repro.rdf.terms import Literal, Triple, URI
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.bindings import Binding
from repro.store.sharding import ShardedStore
from repro.store.succinct_edge import SuccinctEdge
from repro.store.updatable import UpdatableSuccinctEdge


class ClusterError(RuntimeError):
    """Base class for cluster failures the engine may retry cleanly."""


class ClusterTimeout(ClusterError):
    """The coordinator's deadline passed; never retried (time is spent)."""


class EpochConflict(ClusterError):
    """A replica has moved past the pinned position; re-pin and retry."""


class ReplicaUnavailable(ClusterError):
    """A replica (or the primary, during a sync) could not be reached."""


# --------------------------------------------------------------------------- #
# wire codec: self-contained (by-value) terms for coordinator→replica requests
# --------------------------------------------------------------------------- #


def _value_term(term) -> tuple:
    """Encode one term fully by value (no dictionary identifiers).

    Requests must decode against a replica frozen at the *pinned* epoch;
    the coordinator's dictionary may already hold later identifiers, so
    unlike the process backend's codec this one never ships ``("i", id)``.
    """
    if isinstance(term, Literal):
        return ("l", term.lexical, term.datatype, term.language)
    if isinstance(term, URI):
        return ("u", term.value)
    return ("b", term.label)


def _value_pattern(pattern: TriplePattern) -> tuple:
    def slot(value):
        if isinstance(value, Variable):
            return ("v", value.name)
        return _value_term(value)

    return (slot(pattern.subject), slot(pattern.predicate), slot(pattern.object))


def _value_binding(binding: Binding) -> tuple:
    return tuple((name, _value_term(value)) for name, value in binding.items())


def _encode_wire_triple(triple: Triple) -> list:
    return [
        _value_term(triple.subject),
        _value_term(triple.predicate),
        _value_term(triple.object),
    ]


def _decode_wire_triple(code) -> Triple:
    subject, predicate, obj = (_decode_term(slot, None) for slot in code)
    return Triple(subject, predicate, obj)


# --------------------------------------------------------------------------- #
# transports
# --------------------------------------------------------------------------- #


class _JsonHttp:
    """One HTTP peer: JSON in/out, with an optional simulated link.

    Both directions of every call are charged to the link —
    :meth:`~repro.edge.device.SimulatedNetwork.transmit_request` for the
    request path, ``transmit`` for the response — so latency, partition
    and drop injection apply at every hop of the cluster.  Transport
    failures (refused connection, timeout, simulated partition or drop)
    surface as :class:`ReplicaUnavailable`; HTTP error *statuses* are
    returned to the caller, which maps them (409 → epoch conflict).
    """

    def __init__(
        self,
        base_url: str,
        network: Optional[SimulatedNetwork] = None,
        timeout_s: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.network = network
        self.timeout_s = timeout_s

    def request(
        self, path: str, payload=None, timeout_s: Optional[float] = None
    ) -> Tuple[int, bytes]:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        timeout = self.timeout_s if timeout_s is None else min(self.timeout_s, timeout_s)
        target = self.base_url + path
        try:
            if self.network is not None:
                self.network.transmit_request(len(data) if data else 0)
            request = urllib.request.Request(target, data=data)
            if data is not None:
                request.add_header("Content-Type", "application/json")
            with urllib.request.urlopen(request, timeout=timeout) as response:
                status, raw = response.status, response.read()
        except urllib.error.HTTPError as error:
            status, raw = error.code, error.read()
        except (OSError, NetworkPartitioned) as error:
            raise ReplicaUnavailable(f"{target}: {error}") from error
        try:
            if self.network is not None:
                self.network.transmit(len(raw))
        except NetworkPartitioned as error:
            raise ReplicaUnavailable(f"{target}: {error}") from error
        return status, raw

    def json(self, path: str, payload=None, timeout_s: Optional[float] = None):
        status, raw = self.request(path, payload, timeout_s)
        document = json.loads(raw.decode("utf-8")) if raw else {}
        return status, document


class HttpReplicationClient:
    """A replica's view of its primary, over HTTP.

    Speaks to the three routes :meth:`ReplicationSource.routes` attaches to
    the primary's :class:`~repro.serve.server.QueryServer`.  Any transport
    or server failure raises :class:`ReplicaUnavailable` — the replica's
    sync reports it upward, and the coordinator fails over to a peer.
    """

    def __init__(
        self,
        base_url: str,
        network: Optional[SimulatedNetwork] = None,
        timeout_s: float = 60.0,
    ) -> None:
        self._http = _JsonHttp(base_url, network=network, timeout_s=timeout_s)

    def manifest(self) -> dict:
        """The primary's current image manifest (kind, generation, files)."""
        status, document = self._http.json("/cluster/manifest")
        if status != 200:
            raise ReplicaUnavailable(
                f"manifest request answered {status}: {document.get('error')}"
            )
        return document

    def fetch_file(self, name: str) -> bytes:
        """One image file of the current manifest, as raw bytes."""
        status, raw = self._http.request("/cluster/file?name=" + urllib.parse.quote(name))
        if status != 200:
            raise ReplicaUnavailable(f"file {name!r} request answered {status}")
        return raw

    def slice(self, generation: int, applied: int, upto_epoch: Optional[int] = None) -> dict:
        """The delta-log suffix past ``applied`` (wire-encoded operations)."""
        path = f"/replicate?generation={generation}&applied={applied}"
        if upto_epoch is not None:
            path += f"&upto={upto_epoch}"
        status, document = self._http.json(path)
        if status != 200:
            raise ReplicaUnavailable(
                f"replicate request answered {status}: {document.get('error')}"
            )
        return document


class LocalReplicationClient:
    """In-process replication transport (tests, fuzzing, single-box drills).

    Same wire documents as :class:`HttpReplicationClient` — the replica
    replays JSON-shaped operations either way, so a property-based test
    driving this transport exercises the exact replay path the HTTP
    cluster uses, minus the sockets.
    """

    def __init__(self, source: "ReplicationSource") -> None:
        self.source = source

    def manifest(self) -> dict:
        """The source's current image manifest."""
        return json.loads(json.dumps(self.source.manifest()))

    def fetch_file(self, name: str) -> bytes:
        """One image file of the current manifest."""
        return self.source.file_bytes(name)

    def slice(self, generation: int, applied: int, upto_epoch: Optional[int] = None) -> dict:
        """The wire-encoded delta-log suffix past ``applied``."""
        return json.loads(json.dumps(self.source.slice(generation, applied, upto_epoch)))


# --------------------------------------------------------------------------- #
# the primary side: image + delta-log shipping
# --------------------------------------------------------------------------- #


class ReplicationSource:
    """The primary's shipping desk: images to bootstrap from, logs to tail.

    Wraps the primary store (updatable, sharded or static) and serves the
    replication protocol's three reads:

    * :meth:`manifest` — the current base image: kind (``image`` /
      ``shards``), generation, the epoch the image captures
      (``base_epoch``), and the file names to download;
    * :meth:`file_bytes` — one image file (name-validated against the
      manifest, so the route cannot read outside the image tree);
    * :meth:`slice` — the wire-encoded delta-log suffix, delegated to the
      store's ``replication_slice`` (which owns the resync / epoch-cap
      semantics).

    Stores with no on-disk image yet get one saved lazily into
    ``workspace`` (once per generation), under the store's write lock so
    image and log stay consistent — the same provider pattern the process
    backend uses.
    """

    def __init__(self, store: SuccinctEdge, workspace: Optional[str] = None) -> None:
        import tempfile

        self.store = store
        self._owns_workspace = workspace is None
        if workspace is None:
            workspace = tempfile.mkdtemp(prefix="succinctedge-ship-")
        else:
            os.makedirs(workspace, exist_ok=True)
        self.workspace = str(workspace)
        self._lock = threading.Lock()
        self._saved_images = {}
        self._files_cache = {}

    # -- image providers (called under the store's write lock) ---------- #

    def _image_provider(self, base, generation: int) -> str:
        path = self._saved_images.get(generation)
        if path is None:
            from repro.store.persistence import save_store_image

            path = os.path.join(self.workspace, f"base-g{generation}.sedg")
            save_store_image(base, path, atomic=True)
            self._saved_images[generation] = path
        return path

    def _directory_provider(self) -> str:
        return os.path.join(self.workspace, "shards-auto")

    # -- shipment state -------------------------------------------------- #

    def _shipment(self):
        """(kind, root, files, generation, base_epoch, epoch), consistently."""
        store = self.store
        with self._lock:
            if isinstance(store, ShardedStore):
                kind = "shards"
                path, generation, epoch, operations = store.delta_shipment(
                    self._directory_provider
                )
                root = str(path)
                files = self._shard_files(root, generation)
            elif isinstance(store, UpdatableSuccinctEdge):
                kind = "image"
                path, generation, epoch, operations = store.delta_shipment(
                    self._image_provider
                )
                root = os.path.dirname(os.path.abspath(str(path)))
                files = [os.path.basename(str(path))]
            else:
                kind = "image"
                generation, epoch, operations = 0, 0, ()
                image = getattr(store, "image", None)
                path = getattr(image, "path", None) if image is not None else None
                if path is None:
                    path = self._image_provider(store, 0)
                root = os.path.dirname(os.path.abspath(str(path)))
                files = [os.path.basename(str(path))]
        return kind, root, list(files), generation, epoch - len(operations), epoch

    def _shard_files(self, root: str, generation: int) -> List[str]:
        key = (root, generation)
        files = self._files_cache.get(key)
        if files is None:
            with open(os.path.join(root, ShardedStore.MANIFEST_NAME), "rb") as handle:
                manifest = json.loads(handle.read().decode("utf-8"))
            files = [ShardedStore.MANIFEST_NAME] + list(manifest.get("files") or [])
            self._files_cache[key] = files
        return list(files)

    def position(self) -> Tuple[int, int]:
        """The primary's current ``(generation, epoch)`` pin position.

        Ensures an on-disk image exists for the current generation (a
        coordinator must never pin a position replicas cannot bootstrap
        to), then reports where the history stands.
        """
        _, _, _, generation, _, epoch = self._shipment()
        return generation, epoch

    def manifest(self) -> dict:
        """The bootstrap document: what to download and where it lands."""
        kind, _, files, generation, base_epoch, epoch = self._shipment()
        return {
            "kind": kind,
            "generation": generation,
            "base_epoch": base_epoch,
            "epoch": epoch,
            "files": files,
        }

    def file_bytes(self, name: str) -> bytes:
        """One manifest file's bytes; unknown names raise :class:`KeyError`."""
        _, root, files, _, _, _ = self._shipment()
        if name not in files:
            raise KeyError(name)
        with open(os.path.join(root, name), "rb") as handle:
            return handle.read()

    def slice(self, generation: int, applied: int, upto_epoch: Optional[int] = None) -> dict:
        """The store's ``replication_slice``, with operations wire-encoded."""
        reply = self.store.replication_slice(generation, applied, upto_epoch)
        if not reply.get("resync"):
            reply = dict(reply)
            reply["operations"] = [
                [operation, _encode_wire_triple(triple)]
                for operation, triple in reply["operations"]
            ]
        return reply

    # -- HTTP face -------------------------------------------------------- #

    def routes(self) -> dict:
        """Extension routes for the primary's :class:`~repro.serve.server.QueryServer`."""
        return {
            "/cluster/manifest": lambda params, body: (200, self.manifest()),
            "/cluster/file": self._file_route,
            "/replicate": self._replicate_route,
        }

    def _file_route(self, params: dict, body):
        name = (params.get("name") or [""])[0]
        try:
            return (200, self.file_bytes(name))
        except KeyError:
            return (404, {"error": f"unknown replication file {name!r}"})

    def _replicate_route(self, params: dict, body):
        generation = int((params.get("generation") or ["0"])[0])
        applied = int((params.get("applied") or ["0"])[0])
        upto = params.get("upto")
        return (200, self.slice(generation, applied, int(upto[0]) if upto else None))

    def close(self) -> None:
        """Remove the owned workspace (saved images); idempotent."""
        if self._owns_workspace:
            import shutil

            shutil.rmtree(self.workspace, ignore_errors=True)


# --------------------------------------------------------------------------- #
# the replica side
# --------------------------------------------------------------------------- #


class _ReadWriteLock:
    """Many readers or one writer: work units read, syncs write.

    A work unit holds the read side for its whole (materialized)
    evaluation, so a concurrent sync can never advance the store mid-unit
    — the position check and the rows it guards are atomic.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self):
        with self._condition:
            while self._writing:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if not self._readers:
                    self._condition.notify_all()

    @contextmanager
    def write(self):
        with self._condition:
            while self._writing or self._readers:
                self._condition.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._condition:
                self._writing = False
                self._condition.notify_all()


class ClusterReplica:
    """One read replica: a bootstrapped image plus a tailed delta log.

    ``bootstrap()`` downloads the primary's manifest and image files into
    ``workdir/g<generation>/``, memory-maps them, and wraps them writable
    so the log can replay; ``sync(upto_epoch=E)`` pulls and replays the
    missing suffix — capped at ``E``, so a replica serving an old-epoch
    query is never dragged past the pin — and re-bootstraps when the
    primary's generation moved (compaction / image rotation).

    :meth:`handle_op` is the work-unit entry point: it syncs forward if the
    unit's position is ahead, answers :class:`EpochConflict` if the replica
    is past it, and otherwise evaluates under the read lock so rows and
    position cannot be torn apart by a concurrent sync.
    """

    def __init__(self, client, workdir) -> None:
        self.client = client
        self.workdir = str(workdir)
        self.store: Optional[SuccinctEdge] = None
        self.kind: Optional[str] = None
        self.generation = -1
        self.base_epoch = 0
        self.applied = 0
        self.syncs = 0
        self.bootstraps = 0
        self._lock = _ReadWriteLock()
        self._evaluators = {}

    @property
    def epoch(self) -> int:
        """The replica's current data epoch (base image + replayed ops)."""
        return self.base_epoch + self.applied

    # -- bootstrap + sync ------------------------------------------------ #

    def bootstrap(self) -> "ClusterReplica":
        """Download the current image and load it; returns self for chaining."""
        with self._lock.write():
            self._bootstrap_locked()
        return self

    def _bootstrap_locked(self) -> None:
        manifest = self.client.manifest()
        generation = manifest["generation"]
        root = os.path.join(self.workdir, f"g{generation:06d}")
        os.makedirs(root, exist_ok=True)
        for name in manifest["files"]:
            target = os.path.join(root, name)
            if not os.path.exists(target):
                staged = target + ".tmp"
                with open(staged, "wb") as handle:
                    handle.write(self.client.fetch_file(name))
                os.replace(staged, target)
        if manifest["kind"] == "shards":
            store: SuccinctEdge = ShardedStore.load_image_directory(
                root, mmap=True, updatable=True
            )
        else:
            from repro.store.persistence import load_store

            store = UpdatableSuccinctEdge(
                load_store(os.path.join(root, manifest["files"][0]), mmap=True)
            )
        self.store = store
        self.kind = manifest["kind"]
        self.generation = generation
        self.base_epoch = manifest["base_epoch"]
        self.applied = 0
        self.bootstraps += 1
        self._evaluators = {}

    def sync(self, upto_epoch: Optional[int] = None, max_rounds: int = 4) -> int:
        """Pull and replay the missing log suffix; returns the epoch reached.

        Loops re-bootstrap → replay for up to ``max_rounds`` rounds (a
        racing compaction can invalidate a freshly pulled manifest);
        transport failures raise :class:`ReplicaUnavailable` unchanged.
        """
        with self._lock.write():
            for _ in range(max_rounds):
                if self.store is None:
                    self._bootstrap_locked()
                reply = self.client.slice(self.generation, self.applied, upto_epoch)
                if reply.get("resync"):
                    self.store = None  # stale generation: full re-bootstrap
                    continue
                for operation, code in reply["operations"]:
                    triple = _decode_wire_triple(code)
                    if operation == "insert":
                        self.store.insert(triple)
                    else:
                        self.store.delete(triple)
                self.applied = reply["applied"]
                self.syncs += 1
                if upto_epoch is None or self.epoch >= upto_epoch:
                    return self.epoch
            raise ReplicaUnavailable(
                f"replica could not converge to epoch {upto_epoch} "
                f"in {max_rounds} rounds (primary kept rotating)"
            )

    # -- work units ------------------------------------------------------ #

    def _position(self):
        with self._lock.read():
            if self.store is None:
                return None
            return (self.generation, self.epoch)

    def handle_op(self, op: str, args, reasoning: bool, generation: int, epoch: int):
        """Serve one work unit at exactly ``(generation, epoch)``.

        Raises :class:`EpochConflict` when the replica cannot stand at that
        position (it moved past it, or a racing sync overshot) and
        :class:`ReplicaUnavailable` when syncing forward needs a primary it
        cannot reach — both abort the unit *before* any row is produced.
        """
        current = self._position()
        if current != (generation, epoch):
            behind = (
                current is None
                or current[0] < generation
                or (current[0] == generation and current[1] < epoch)
            )
            if behind:
                self.sync(upto_epoch=epoch)
        with self._lock.read():
            if self.store is None or (self.generation, self.epoch) != (generation, epoch):
                raise EpochConflict(
                    f"replica stands at (g{self.generation}, e{self.epoch}); "
                    f"cannot serve a unit pinned at (g{generation}, e{epoch})"
                )
            return self._dispatch_locked(op, args, reasoning)

    def _evaluator(self, reasoning: bool) -> TriplePatternEvaluator:
        evaluator = self._evaluators.get(reasoning)
        if evaluator is None:
            evaluator = TriplePatternEvaluator(self.store, reasoning=reasoning)
            self._evaluators[reasoning] = evaluator
        return evaluator

    def _shard_view(self, shard_index):
        if shard_index is None or not isinstance(self.store, ShardedStore):
            return self.store
        return self.store.shards[shard_index]

    def _dispatch_locked(self, op: str, args, reasoning: bool):
        store = self.store
        instances = store.instances
        if op == "ping":
            return {"generation": self.generation, "epoch": self.epoch}
        if op == "eval_many":
            pattern_code, binding_codes = args
            pattern = _decode_pattern(pattern_code, instances)
            evaluate = self._evaluator(reasoning).evaluate
            rows: List[tuple] = []
            for code in binding_codes:
                for result in evaluate(pattern, _decode_binding(code, instances)):
                    rows.append(_encode_binding(result, instances))
            return rows
        shard = self._shard_view(args[-1])
        if op == "pairs":
            property_id = args[0]
            return [
                list(shard.object_store.pairs_for_property(property_id)),
                [
                    [subject_id, _encode_term(literal, instances)]
                    for subject_id, literal in shard.datatype_store.pairs_for_property(
                        property_id
                    )
                ],
            ]
        if op == "subjects_obj":
            object_id = instances.try_locate(_decode_term(args[1], instances))
            if object_id is None:
                return []  # the term entered the dictionary after this epoch
            return list(shard.object_store.subjects_for(args[0], object_id))
        if op == "subjects_lit":
            literal = _decode_term(args[1], instances)
            return list(shard.datatype_store.subjects_for(args[0], literal))
        if op == "type_interval":
            return list(shard.type_store.subjects_of_interval(args[0], args[1]))
        if op == "type_concept":
            return list(shard.type_store.subjects_of(args[0]))
        if op == "expand":
            from repro.query.paths import expand_frontier_local

            forward_pids, inverse_pids, frontier_ids, literal_codes = args[:4]
            literals = [_decode_term(code, instances) for code in literal_codes]
            out_ids, out_literals = expand_frontier_local(
                shard, forward_pids, inverse_pids, frontier_ids, literals
            )
            return [
                list(out_ids),
                [_encode_term(literal, instances) for literal in out_literals],
            ]
        raise ValueError(f"unknown cluster op {op!r}")

    # -- HTTP face -------------------------------------------------------- #

    def routes(self) -> dict:
        """Extension routes for this replica's :class:`~repro.serve.server.QueryServer`."""
        return {"/cluster/op": self._op_route, "/cluster/health": self._health_route}

    def _op_route(self, params: dict, body):
        request = json.loads(body.decode("utf-8"))
        try:
            rows = self.handle_op(
                request["op"],
                request.get("args", ()),
                bool(request.get("reasoning", True)),
                request["generation"],
                request["epoch"],
            )
        except EpochConflict as error:
            return (
                409,
                {"error": str(error), "generation": self.generation, "epoch": self.epoch},
            )
        except ReplicaUnavailable as error:
            return (503, {"error": str(error)})
        return (200, {"rows": rows, "generation": self.generation, "epoch": self.epoch})

    def _health_route(self, params: dict, body):
        if self.store is None:
            return (503, {"status": "bootstrapping"})
        return (
            200,
            {
                "status": "ok",
                "generation": self.generation,
                "epoch": self.epoch,
                "applied": self.applied,
                "triples": self.store.triple_count,
            },
        )

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        network: Optional[SimulatedNetwork] = None,
    ):
        """Start a :class:`~repro.serve.server.QueryServer` for this replica.

        The server answers plain ``/sparql`` against the replica's local
        store *and* the ``/cluster/op`` + ``/cluster/health`` work-unit
        routes; the caller owns the returned (started) server's lifecycle.
        """
        from repro.serve.server import QueryServer
        from repro.serve.service import QueryService

        if self.store is None:
            self.bootstrap()
        service = QueryService(self.store)
        return QueryServer(
            service, host=host, port=port, network=network, routes=self.routes()
        ).start()


# --------------------------------------------------------------------------- #
# the coordinator side
# --------------------------------------------------------------------------- #


class ReplicaSet:
    """The coordinator's replica directory: health, routing, hedging.

    * **Routing** is shard-affine (shard ``i`` prefers replica ``i mod R``
      — per-shard working sets stay warm in each replica's page cache) with
      the remaining healthy replicas as failover candidates in rotation.
    * **Health**: a transport failure marks the replica down and the unit
      fails over; :meth:`refresh_health` probes ``/cluster/health`` and
      readmits recovered replicas (the engine calls it between attempts).
    * **Hedging**: when a unit has no answer after ``hedge_after_s``, the
      same unit is also sent to the next candidate and the first success
      wins — a lagging or slow replica adds one hedge interval, not its
      full stall, to the query.
    * **Deadline**: ``deadline_at`` (a ``perf_counter`` instant) bounds the
      whole dispatch; past it :class:`ClusterTimeout` is raised and never
      retried.

    An :class:`EpochConflict` from one replica does *not* mark it down
    (the replica is healthy, just elsewhere in history); the dispatch
    tries the other candidates and re-raises the conflict only when no
    candidate can serve the pinned position.
    """

    def __init__(
        self,
        urls: Sequence[str],
        networks: Optional[Sequence[Optional[SimulatedNetwork]]] = None,
        request_timeout_s: float = 30.0,
        hedge_after_s: float = 0.05,
    ) -> None:
        if not urls:
            raise ValueError("a replica set needs at least one replica URL")
        self.urls = [url.rstrip("/") for url in urls]
        if networks is None:
            networks = [None] * len(self.urls)
        if len(networks) != len(self.urls):
            raise ValueError("networks must align with urls")
        self._clients = [
            _JsonHttp(url, network=network, timeout_s=request_timeout_s)
            for url, network in zip(self.urls, networks)
        ]
        self.healthy = [True] * len(self.urls)
        self.dispatches = [0] * len(self.urls)
        self.hedges = 0
        self.failovers = 0
        self.hedge_after_s = hedge_after_s
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.urls)),
            thread_name_prefix="succinctedge-cluster",
        )
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.urls)

    # -- health ---------------------------------------------------------- #

    def mark_down(self, index: int) -> None:
        """Exclude one replica from routing until a health probe readmits it."""
        with self._lock:
            self.healthy[index] = False

    def refresh_health(self) -> List[bool]:
        """Probe every replica's ``/cluster/health``; returns the new flags."""
        for index, client in enumerate(self._clients):
            try:
                status, _ = client.json("/cluster/health")
                alive = status == 200
            except ClusterError:
                alive = False
            with self._lock:
                self.healthy[index] = alive
        return list(self.healthy)

    def _candidates(self, shard_hint: int) -> List[int]:
        count = len(self.urls)
        start = shard_hint % count
        with self._lock:
            flags = list(self.healthy)
        return [
            (start + offset) % count
            for offset in range(count)
            if flags[(start + offset) % count]
        ]

    # -- dispatch --------------------------------------------------------- #

    def _call(self, index: int, payload: dict, deadline_at: Optional[float]):
        with self._lock:
            self.dispatches[index] += 1
        remaining = None if deadline_at is None else deadline_at - time.perf_counter()
        if remaining is not None and remaining <= 0:
            raise ClusterTimeout("cluster deadline passed before the unit was sent")
        status, document = self._clients[index].json(
            "/cluster/op", payload, timeout_s=remaining
        )
        if status == 200:
            return document["rows"]
        if status == 409:
            raise EpochConflict(
                document.get("error") or f"replica {self.urls[index]} epoch conflict"
            )
        raise ReplicaUnavailable(
            f"replica {self.urls[index]} answered {status}: {document.get('error')}"
        )

    def dispatch(
        self,
        op: str,
        args,
        reasoning: bool,
        generation: int,
        epoch: int,
        shard_hint: int = 0,
        deadline_at: Optional[float] = None,
    ):
        """Run one work unit somewhere in the set; first success wins."""
        payload = {
            "op": op,
            "args": args,
            "reasoning": reasoning,
            "generation": generation,
            "epoch": epoch,
        }
        candidates = self._candidates(shard_hint)
        if not candidates:
            raise ReplicaUnavailable("no healthy replicas in the set")
        pending = list(candidates)
        in_flight = {}
        conflict: Optional[EpochConflict] = None
        last_error: Optional[ClusterError] = None

        def launch() -> None:
            index = pending.pop(0)
            in_flight[self._pool.submit(self._call, index, payload, deadline_at)] = index

        launch()
        while in_flight:
            remaining = None if deadline_at is None else deadline_at - time.perf_counter()
            if remaining is not None and remaining <= 0:
                raise ClusterTimeout(
                    f"work unit {op!r} missed the cluster deadline "
                    f"({len(in_flight)} attempt(s) still in flight)"
                )
            timeout = self.hedge_after_s if pending else remaining
            if remaining is not None:
                timeout = remaining if timeout is None else min(timeout, remaining)
            done, _ = wait(set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                if pending:  # hedge: race the next candidate against the slow one
                    with self._lock:
                        self.hedges += 1
                    launch()
                continue
            for future in done:
                index = in_flight.pop(future)
                try:
                    rows = future.result()
                except ClusterTimeout:
                    raise
                except EpochConflict as error:
                    conflict = error
                except ClusterError as error:
                    self.mark_down(index)
                    last_error = error
                except Exception as error:  # defensive: treat as unavailable
                    self.mark_down(index)
                    last_error = ReplicaUnavailable(f"{self.urls[index]}: {error}")
                else:
                    return rows
            if not in_flight and pending:
                with self._lock:
                    self.failovers += 1
                launch()
        if conflict is not None:
            raise conflict
        raise last_error if last_error is not None else ReplicaUnavailable(
            "every candidate replica failed"
        )

    def close(self) -> None:
        """Shut the dispatch pool down (abandoning stragglers)."""
        self._pool.shutdown(wait=False)

    def info(self) -> dict:
        """Routing and health accounting (tests and ``/stats`` consumers)."""
        with self._lock:
            return {
                "urls": list(self.urls),
                "healthy": list(self.healthy),
                "dispatches": list(self.dispatches),
                "hedges": self.hedges,
                "failovers": self.failovers,
            }

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ClusterExecutor(ParallelExecutor):
    """:class:`ParallelExecutor` whose fan-out crosses the network.

    Inherits the scatter decisions, per-shard cardinality pruning, batch
    sizing and the windowed ordered drain; only the transport differs —
    work units go through :meth:`ReplicaSet.dispatch` (stamped with the
    pinned position), raced on the inherited thread pool so per-shard
    round trips overlap.  Bound-subject probes the planner prunes to a
    single shard stay local on the coordinator's primary store, like the
    single-shard cases of the thread and process backends.
    """

    def __init__(
        self,
        store: SuccinctEdge,
        replicas: ReplicaSet,
        source: ReplicationSource,
        reasoning: bool = True,
        inner: Optional[TriplePatternEvaluator] = None,
        max_workers: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if max_workers is None:
            max_workers = max(2, 2 * len(replicas))
        super().__init__(
            store,
            reasoning=reasoning,
            inner=inner,
            max_workers=max_workers,
            batch_size=batch_size,
        )
        self.replicas = replicas
        self.source = source
        self._local = threading.local()

    # -- position pinning ------------------------------------------------- #

    @contextmanager
    def pinned(self, generation: int, epoch: int, deadline_at: Optional[float] = None):
        """Stamp every work unit dispatched from this thread with one position."""
        previous = getattr(self._local, "pin", None)
        self._local.pin = (generation, epoch, deadline_at)
        try:
            yield
        finally:
            self._local.pin = previous

    def _pin(self) -> Tuple[int, int, Optional[float]]:
        pin = getattr(self._local, "pin", None)
        if pin is not None:
            return pin
        generation, epoch = self.source.position()
        return generation, epoch, None

    def _dispatch(self, op: str, args, shard_hint: int, pin=None):
        generation, epoch, deadline_at = self._pin() if pin is None else pin
        return self.replicas.dispatch(
            op,
            args,
            self.reasoning,
            generation,
            epoch,
            shard_hint=shard_hint,
            deadline_at=deadline_at,
        )

    # -- scatter/gather over the replica set ------------------------------ #

    def expand_frontier(self, forward_pids, inverse_pids, frontier_ids, frontier_literals):
        """One property-path BFS round as epoch-pinned cluster work units.

        One ``expand`` unit per shard holding a candidate property (one
        whole-store unit for monolithic stores), every unit stamped with
        the query's pinned ``(generation, epoch)`` so each round reads the
        same snapshot on whichever replica serves it.  Frontier ids travel
        raw — the dictionary is append-only and replayed identically from
        the delta log, so identifiers agree across the cluster at any
        pinned position; literals go through the wire codec.
        """
        from repro.query.paths import merge_expansions

        store = self.store
        if isinstance(store, ShardedStore) and len(self.shards) >= 2:
            indexes: List[Optional[int]] = []
            seen = set()
            for property_id in list(forward_pids) + list(inverse_pids):
                holding = self._shard_indexes_holding(
                    self._property_shard_counts(property_id)
                )
                for index in holding:
                    if index not in seen:
                        seen.add(index)
                        indexes.append(index)
            if not indexes:
                return [], []
        else:
            indexes = [None]
        pin = self._pin()
        pool = self._ensure_pool()
        instances = store.instances
        literal_codes = [
            _encode_term(literal, instances) for literal in frontier_literals
        ]
        unit = (
            list(forward_pids),
            list(inverse_pids),
            list(frontier_ids),
            literal_codes,
        )
        futures = [
            pool.submit(self._dispatch, "expand", unit + (index,), index or 0, pin)
            for index in indexes
        ]
        replies = []
        for future in futures:
            reply_ids, reply_codes = future.result()
            replies.append(
                (reply_ids, [_decode_term(code, instances) for code in reply_codes])
            )
        return merge_expansions(replies)

    def _scatter_rdf_type(
        self, subject_var: str, object_term: URI, binding: Binding
    ) -> Iterator[Binding]:
        store = self.store
        concept_id = store.concepts.try_locate(object_term)
        if concept_id is None:
            return
        pin = self._pin()
        pool = self._ensure_pool()
        if self.reasoning:
            low, high = store.concepts.interval(object_term)
            indexes = self._shard_indexes_holding(self._concept_shard_counts(low, high))
            futures = [
                pool.submit(self._dispatch, "type_interval", (low, high, index), index, pin)
                for index in indexes
            ]
        else:
            indexes = self._shard_indexes_holding(
                self._concept_shard_counts(concept_id, concept_id + 1)
            )
            futures = [
                pool.submit(self._dispatch, "type_concept", (concept_id, index), index, pin)
                for index in indexes
            ]
        extract = store.instances.extract
        extend = binding.extended
        for future in futures:
            for subject_id in future.result():
                yield extend(subject_var, extract(subject_id))

    def _scatter_property(
        self,
        predicate_term: URI,
        subject_var: str,
        object_slot,
        binding: Binding,
    ) -> Iterator[Binding]:
        object_term, object_var = object_slot
        store = self.store
        property_ids = self.inner._candidate_property_ids(predicate_term)
        if not property_ids:
            return
        pin = self._pin()
        pool = self._ensure_pool()
        instances = store.instances
        extract = instances.extract
        extend = binding.extended

        if object_term is not None:
            op = "subjects_lit" if isinstance(object_term, Literal) else "subjects_obj"
            object_code = _value_term(object_term)
            futures = []
            for property_id in property_ids:
                for index in self._shard_indexes_holding(
                    self._property_shard_counts(property_id)
                ):
                    futures.append(
                        pool.submit(
                            self._dispatch, op, (property_id, object_code, index), index, pin
                        )
                    )
            for future in futures:
                for found_subject in future.result():
                    yield extend(subject_var, extract(found_subject))
            return

        # (?s, p, ?o): one "pairs" unit per (property × holding shard),
        # scheduled one property ahead — the monolithic emission order is
        # property-major, object layout before datatype layout, shard-minor.
        diagonal = subject_var == object_var
        base = binding.as_dict()
        adopt = Binding._adopt

        def schedule(property_id: int):
            indexes = self._shard_indexes_holding(self._property_shard_counts(property_id))
            return [
                pool.submit(self._dispatch, "pairs", (property_id, index), index, pin)
                for index in indexes
            ]

        window = []  # at most 2 scheduled properties: current + next
        position = 0
        while position < len(property_ids) or window:
            while position < len(property_ids) and len(window) < 2:
                window.append(schedule(property_ids[position]))
                position += 1
            replies = [future.result() for future in window.pop(0)]
            for object_pairs, _ in replies:
                for found_subject, found_object in object_pairs:
                    if diagonal:
                        if found_subject == found_object:
                            yield extend(subject_var, extract(found_subject))
                        continue
                    values = dict(base)
                    values[subject_var] = extract(found_subject)
                    values[object_var] = extract(found_object)
                    yield adopt(values)
            for _, datatype_pairs in replies:
                for found_subject, literal_code in datatype_pairs:
                    if diagonal:
                        continue  # a subject URI never equals a literal
                    values = dict(base)
                    values[subject_var] = extract(found_subject)
                    values[object_var] = _decode_term(literal_code, instances)
                    yield adopt(values)

    def evaluate_many(
        self, pattern: TriplePattern, bindings: Iterable[Binding]
    ) -> Iterator[Binding]:
        """Batched bind join across the replica set, in upstream order.

        Batches rotate across replicas (the hint advances per batch) and
        race on the local thread pool so several round trips overlap; the
        inherited windowed drain keeps emission in upstream order.
        """
        instances = self.store.instances
        pattern_code = _value_pattern(pattern)
        pin = self._pin()
        pool = self._ensure_pool()
        counter = itertools.count()

        def submit(chunk: List[Binding]):
            codes = tuple(_value_binding(one) for one in chunk)
            hint = next(counter)
            return pool.submit(
                self._dispatch, "eval_many", (pattern_code, codes), hint, pin
            )

        def drain(future) -> List[Binding]:
            return [_decode_binding(code, instances) for code in future.result()]

        return self._windowed_many(pattern, bindings, submit=submit, drain=drain)


class ClusterQueryEngine(QueryEngine):
    """A :class:`~repro.query.engine.QueryEngine` over a replica set.

    Same construction pattern as the thread and process engines (the
    optimizer keeps the sequential runtime estimator over the primary, so
    plans — and with them row order — cannot diverge).  ``execute`` /
    ``ask`` / ``stream`` pin one ``(generation, epoch)`` position for the
    whole query and stamp it on every work unit; :class:`ClusterError`
    aborts the attempt before any row escapes, health is refreshed, and
    the query retries once at a *fresh* pin.  :class:`ClusterTimeout` is
    never retried — the deadline is already spent.
    """

    #: Exceptions the serving layer may retry after calling :meth:`heal`.
    retryable_exceptions = (ClusterError,)

    def __init__(
        self,
        store: SuccinctEdge,
        replicas: ReplicaSet,
        source: ReplicationSource,
        reasoning: bool = True,
        join_strategy: str = "auto",
        max_workers: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        planner: str = "cost",
        deadline_s: Optional[float] = None,
        retries: int = 1,
    ) -> None:
        super().__init__(
            store, reasoning=reasoning, join_strategy=join_strategy, planner=planner
        )
        self.deadline_s = deadline_s
        self.retries = max(0, retries)
        self.evaluator = ClusterExecutor(
            store,
            replicas=replicas,
            source=source,
            reasoning=reasoning,
            inner=self.evaluator,
            max_workers=max_workers,
            batch_size=batch_size,
        )

    @property
    def replicas(self) -> ReplicaSet:
        """The replica set work units are routed through."""
        return self.evaluator.replicas

    def heal(self) -> None:
        """Refresh replica health (the between-attempts retry hook)."""
        self.replicas.refresh_health()

    @contextmanager
    def _pinned(self):
        generation, epoch = self.evaluator.source.position()
        deadline_at = (
            None if self.deadline_s is None else time.perf_counter() + self.deadline_s
        )
        with self.evaluator.pinned(generation, epoch, deadline_at):
            yield

    def _retrying(self, call, query):
        for attempt in range(self.retries + 1):
            try:
                with self._pinned():
                    return call(query)
            except ClusterTimeout:
                raise
            except ClusterError:
                if attempt >= self.retries:
                    raise
                self.heal()
        raise AssertionError("unreachable")

    def execute(self, query):
        """Execute at one pinned position, re-pinning and retrying on failure."""
        return self._retrying(super().execute, query)

    def ask(self, query):
        """ASK at one pinned position, with the same retry semantics."""
        return self._retrying(super().ask, query)

    def stream(self, query):
        """Stream rows, the whole iteration pinned at one position.

        Streaming cannot retry mid-flight (rows may already be consumed);
        a :class:`ClusterError` propagates to the caller — the serving
        layer materializes and re-runs whole queries, so partial rows
        never reach a client.
        """
        def generate():
            with self._pinned():
                yield from super(ClusterQueryEngine, self).stream(query)

        return generate()

    def close(self) -> None:
        """Release the executor's thread pool (the replica set is shared)."""
        self.evaluator.close()

    def __enter__(self) -> "ClusterQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
