"""Serving workloads: interactive query mixes and mixed read/write streams.

The paper's evaluation measures one query at a time; the serving scenario
(``docs/operations.md``) instead needs *traffic*: many clients issuing a
skewed mix of mostly-cheap interactive queries, with a trickle of writes
arriving concurrently.  This module derives that traffic deterministically
from a generated LUBM dataset so that the server tests, the throughput
benchmark and ``examples/serving.py`` all replay the same workload.

* :meth:`ServingWorkload.interactive_mix` — the weighted query mix: point
  lookups (S1-S10) dominate, scans/joins (S11-S15, M1, R5) and analytics
  (A2/A3/A5) appear with realistic lower weights;
* :meth:`ServingWorkload.sample_queries` — a deterministic weighted sample
  with repetition (repetition is what exercises the result cache);
* :meth:`ServingWorkload.write_stream` — synthetic measurement triples in a
  dedicated namespace (never-seen subjects, the live-insert path);
* :meth:`ServingWorkload.mixed_ops` — the interleaved read/write operation
  stream used by the example and the concurrency tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple, Union

from repro.rdf.terms import Literal, Triple, URI
from repro.workloads.lubm import LubmDataset
from repro.workloads.queries import BenchmarkQuery, QueryCatalog

#: Namespace of the synthetic live readings injected by the write stream.
SERVING_NS = "http://serving.succinct-edge.example/"


@dataclass(frozen=True)
class ServingOp:
    """One operation of a mixed workload: a query, an insert or a delete."""

    kind: str  #: ``"query"`` | ``"insert"`` | ``"delete"``
    query: Union[BenchmarkQuery, None] = None
    triple: Union[Triple, None] = None


class ServingWorkload:
    """Deterministic serving traffic derived from one LUBM dataset."""

    #: ``(query identifier, weight)`` — point lookups dominate interactive
    #: traffic; scans, joins and analytics are the heavy tail.
    MIX_WEIGHTS: List[Tuple[str, int]] = [
        ("S1", 12),
        ("S2", 10),
        ("S6", 10),
        ("S7", 10),
        ("S8", 6),
        ("S11", 3),
        ("S14", 3),
        ("M1", 2),
        ("R5", 1),
        ("A2", 2),
        ("A3", 1),
        ("A5", 4),
    ]

    def __init__(self, dataset: LubmDataset) -> None:
        self.dataset = dataset
        self.catalog = QueryCatalog(dataset)
        self._by_id = self.catalog.by_identifier()

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #

    #: Interactive clients page through large answer sets instead of
    #: downloading them whole; scans without an explicit LIMIT get this one.
    PAGE_SIZE = 200

    @staticmethod
    def _paginated(query: BenchmarkQuery, page_size: int) -> BenchmarkQuery:
        """The serving variant of ``query``: paged unless already bounded.

        ASK queries and queries that carry their own ``LIMIT`` pass through;
        everything else gets ``LIMIT page_size`` appended — which the
        streaming engine turns into early termination, exactly what a
        paginating client triggers.
        """
        text = query.sparql
        if "ASK" in text or "LIMIT" in text or page_size <= 0:
            return query
        return BenchmarkQuery(
            identifier=query.identifier,
            sparql=text + f" LIMIT {page_size}",
            group=query.group,
            requires_reasoning=query.requires_reasoning,
            description=f"{query.description} (first page of {page_size})",
        )

    def interactive_mix(
        self, page_size: int = PAGE_SIZE
    ) -> List[Tuple[BenchmarkQuery, int]]:
        """The weighted query mix as ``(query, weight)`` pairs (paginated)."""
        return [
            (self._paginated(self._by_id[identifier], page_size), weight)
            for identifier, weight in self.MIX_WEIGHTS
        ]

    def sample_queries(
        self, count: int, seed: int = 97, page_size: int = PAGE_SIZE
    ) -> List[BenchmarkQuery]:
        """A deterministic weighted sample (with repetition) of the mix."""
        rng = random.Random(seed)
        mix = self.interactive_mix(page_size)
        queries = [query for query, _weight in mix]
        weights = [weight for _query, weight in mix]
        return rng.choices(queries, weights=weights, k=count)

    # ------------------------------------------------------------------ #
    # write side
    # ------------------------------------------------------------------ #

    def write_stream(self, count: int, seed: int = 13) -> List[Triple]:
        """``count`` synthetic measurement triples (never-seen subjects).

        Each reading attaches a numeric value to a fresh reading IRI via a
        fresh-per-run datatype property, plus a link to a known department —
        exercising the overflow-dictionary insert path end to end.
        """
        rng = random.Random(seed)
        value_property = URI(SERVING_NS + "value")
        about_property = URI(SERVING_NS + "about")
        # landmark_uri already returns a URI term; re-wrapping it would
        # create a distinct term that never matches the stored department.
        department = self.dataset.landmark_uri("dept_workers_135")
        triples: List[Triple] = []
        for index in range(count):
            reading = URI(f"{SERVING_NS}reading/{seed}/{index}")
            if index % 2 == 0:
                triples.append(Triple(reading, value_property, Literal(rng.randint(0, 999))))
            else:
                triples.append(Triple(reading, about_property, department))
        return triples

    # ------------------------------------------------------------------ #
    # the interleaved stream
    # ------------------------------------------------------------------ #

    def mixed_ops(
        self,
        count: int,
        write_ratio: float = 0.1,
        delete_ratio: float = 0.25,
        seed: int = 29,
    ) -> Iterator[ServingOp]:
        """``count`` interleaved operations: queries with a write trickle.

        ``write_ratio`` of the operations are writes; of those,
        ``delete_ratio`` delete a previously inserted reading (so the stream
        exercises tombstones too).  Deterministic for a given ``seed``.
        """
        rng = random.Random(seed)
        queries = self.sample_queries(count, seed=seed + 1)
        # Sized to the worst case (every decision a write) so the delivered
        # write ratio never silently degrades when the binomial draw runs
        # above its mean.
        writes = self.write_stream(count, seed=seed + 2)
        inserted: List[Triple] = []
        write_cursor = 0
        for index in range(count):
            if rng.random() < write_ratio and write_cursor < len(writes):
                if inserted and rng.random() < delete_ratio:
                    victim = inserted.pop(rng.randrange(len(inserted)))
                    yield ServingOp(kind="delete", triple=victim)
                else:
                    triple = writes[write_cursor]
                    write_cursor += 1
                    inserted.append(triple)
                    yield ServingOp(kind="insert", triple=triple)
            else:
                yield ServingOp(kind="query", query=queries[index])
