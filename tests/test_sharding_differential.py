"""Differential tests: the sharded store must equal the monolithic store.

The acceptance bar of the scale-out layer: for every one of the paper's 26
evaluation queries (S1-S15, M1-M5, R1-R6) plus the A1-A6 analytics, query
results over a :class:`~repro.store.sharding.ShardedStore` are
**byte-identical** (same variables, same rows, same order) to the monolithic
store — both fully succinct and with a live delta riding on one shard.

Unit tests additionally pin the partitioner arithmetic, the write routing,
the aggregated epoch accounting and the per-shard compaction fan-out.
"""

from __future__ import annotations

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Triple, URI
from repro.sparql.bindings import AskResult
from repro.store.sharding import ShardedStore, SubjectPartitioner
from repro.store.succinct_edge import SuccinctEdge
from repro.store.updatable import UpdatableSuccinctEdge

ALL_QUERY_IDS = (
    [f"S{i}" for i in range(1, 16)]
    + [f"M{i}" for i in range(1, 6)]
    + [f"R{i}" for i in range(1, 7)]
    + [f"A{i}" for i in range(1, 7)]
)

SHARDS = 3


def assert_identical(left_store, right_store, sparql, reasoning=True):
    left = left_store.query(sparql, reasoning=reasoning)
    right = right_store.query(sparql, reasoning=reasoning)
    if isinstance(left, AskResult):
        assert isinstance(right, AskResult)
        assert left.boolean == right.boolean
        return
    assert left.variables == right.variables
    assert left.to_tuples() == right.to_tuples()


# --------------------------------------------------------------------------- #
# partitioner unit tests
# --------------------------------------------------------------------------- #


def test_partitioner_routes_by_interval():
    partitioner = SubjectPartitioner([10, 20])
    assert partitioner.shard_count == 3
    assert [partitioner.shard_of(s) for s in (0, 9, 10, 19, 20, 10_000)] == [0, 0, 1, 1, 2, 2]
    assert partitioner.interval(0) == (0, 10)
    assert partitioner.interval(2) == (20, None)  # open-ended: fresh ids land here


def test_partitioner_balanced_quantiles():
    partitioner = SubjectPartitioner.balanced(list(range(100)), shards=4)
    assert partitioner.shard_count == 4
    counts = [0, 0, 0, 0]
    for subject in range(100):
        counts[partitioner.shard_of(subject)] += 1
    assert counts == [25, 25, 25, 25]


def test_partitioner_rejects_unsorted_boundaries():
    with pytest.raises(ValueError):
        SubjectPartitioner([20, 10])


def test_partitioner_degenerates_to_single_shard():
    partitioner = SubjectPartitioner.balanced([5, 5, 5], shards=4)
    # Fewer distinct subjects than shards: duplicate boundaries collapse.
    assert partitioner.shard_count <= 2


# --------------------------------------------------------------------------- #
# fixtures: monolithic reference, pure sharded store, sharded + live delta
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def sharded(small_lubm_store):
    store = ShardedStore.from_store(small_lubm_store, shards=SHARDS)
    assert store.shard_count == SHARDS
    return store


@pytest.fixture(scope="module")
def live_dataset(small_lubm):
    """~80/20 split: base graph plus the triples streamed in live."""
    base = Graph()
    live = []
    for index, triple in enumerate(small_lubm.graph):
        if index % 5 == 4:
            live.append(triple)
        else:
            base.add(triple)
    return base, live


@pytest.fixture(scope="module")
def sharded_with_delta(small_lubm, live_dataset):
    """A sharded store where the live triples arrived through insert()."""
    base, live = live_dataset
    base_store = SuccinctEdge.from_graph(base, ontology=small_lubm.ontology)
    store = ShardedStore.from_store(
        base_store, shards=SHARDS, updatable=True, ontology=small_lubm.ontology
    )
    inserted = sum(1 for triple in live if store.insert(triple))
    assert inserted == len(live)
    assert store.data_epoch == len(live)
    return store


@pytest.fixture(scope="module")
def live_reference(small_lubm, live_dataset):
    """Monolithic rebuild over base-then-live data (matches insert order)."""
    base, live = live_dataset
    merged = Graph()
    for triple in base:
        merged.add(triple)
    for triple in live:
        merged.add(triple)
    return SuccinctEdge.from_graph(merged, ontology=small_lubm.ontology)


# --------------------------------------------------------------------------- #
# the differential matrix
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_sharded_results_byte_identical(sharded, small_lubm_store, small_lubm_catalog, identifier):
    query = small_lubm_catalog.by_identifier()[identifier]
    assert_identical(sharded, small_lubm_store, query.sparql, query.requires_reasoning)


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_sharded_with_live_delta_byte_identical(
    sharded_with_delta, live_reference, small_lubm_catalog, identifier
):
    # The reference is a monolithic rebuild over base-then-live data, the
    # order in which the routed write path first saw every term.
    query = small_lubm_catalog.by_identifier()[identifier]
    assert_identical(
        sharded_with_delta, live_reference, query.sparql, query.requires_reasoning
    )


def test_sharded_compaction_changes_nothing(
    sharded_with_delta, live_reference, small_lubm_catalog
):
    reports = sharded_with_delta.compact()
    assert reports, "at least one shard had a pending delta"
    assert sharded_with_delta.compaction_epoch == len(reports)
    for identifier in ("S2", "S8", "M3", "R5", "A3"):
        query = small_lubm_catalog.by_identifier()[identifier]
        assert_identical(
            sharded_with_delta, live_reference, query.sparql, query.requires_reasoning
        )


# --------------------------------------------------------------------------- #
# facade behaviour
# --------------------------------------------------------------------------- #


def test_shards_partition_the_triples(sharded, small_lubm_store):
    assert sharded.triple_count == small_lubm_store.triple_count
    assert sum(shard.triple_count for shard in sharded.shards) == sharded.triple_count
    # Quantile partitioning keeps the shards within the same order of magnitude.
    sizes = sorted(shard.triple_count for shard in sharded.shards)
    assert sizes[0] > 0
    assert sizes[-1] < sharded.triple_count  # no shard holds everything


def test_match_enumeration_equals_monolithic(sharded, small_lubm_store):
    left = sorted(tuple(map(str, triple)) for triple in sharded.match())
    right = sorted(tuple(map(str, triple)) for triple in small_lubm_store.match())
    assert left == right


def test_shard_summary_reports_intervals(sharded):
    summary = sharded.shard_summary()
    assert len(summary) == SHARDS
    assert summary[0]["subjects"][0] == 0
    assert summary[-1]["subjects"][1] is None  # last interval is open


def test_immutable_sharded_store_rejects_writes(sharded):
    triple = Triple(URI("http://x.org/s"), URI("http://x.org/p"), URI("http://x.org/o"))
    with pytest.raises(TypeError):
        sharded.insert(triple)


def test_new_subjects_route_to_last_shard(small_lubm, small_lubm_store):
    store = ShardedStore.from_store(
        small_lubm_store, shards=SHARDS, updatable=True, ontology=small_lubm.ontology
    )
    reading = URI("http://serving.succinct-edge.example/reading/route-test")
    assert store.insert(Triple(reading, URI("http://x.org/value"), Literal(42)))
    last = store.shards[-1]
    assert isinstance(last, UpdatableSuccinctEdge)
    assert last.data_epoch == 1
    assert all(shard.data_epoch == 0 for shard in store.shards[:-1])
    # Visible through the facade, and deletable through the same routing.
    assert len(store.query("SELECT ?v WHERE { <%s> <http://x.org/value> ?v }" % reading)) == 1
    assert store.delete(Triple(reading, URI("http://x.org/value"), Literal(42)))
    assert store.data_epoch == 2


def test_delete_of_unknown_subject_is_a_noop(sharded_with_delta):
    before = sharded_with_delta.data_epoch
    assert not sharded_with_delta.delete(
        Triple(URI("http://nowhere.example/x"), URI("http://x.org/p"), URI("http://x.org/o"))
    )
    assert sharded_with_delta.data_epoch == before


def test_writes_after_compaction_stay_visible(small_lubm, small_lubm_store):
    # Regression: shard compaction swaps the shard's layout objects; the
    # facade's fan-out views must resolve them at access time, or every
    # post-compaction write becomes invisible to queries.
    store = ShardedStore.from_store(
        small_lubm_store, shards=SHARDS, updatable=True, ontology=small_lubm.ontology
    )
    value = URI("http://serving.succinct-edge.example/p")
    before = Triple(URI("http://serving.succinct-edge.example/pre"), value, Literal(1))
    after = Triple(URI("http://serving.succinct-edge.example/post"), value, Literal(2))
    assert store.insert(before)
    assert store.compact()
    assert store.insert(after)
    assert store.triple_count == small_lubm_store.triple_count + 2
    rows = store.query(
        "SELECT ?s ?v WHERE { ?s <http://serving.succinct-edge.example/p> ?v }",
        reasoning=False,
    )
    assert len(rows) == 2  # both the folded and the fresh write are served


def test_concurrent_writers_never_alias_fresh_terms(small_lubm, small_lubm_store):
    # The shards share one set of dictionaries; the facade's write lock must
    # serialize identifier assignment even when writers target different
    # shards concurrently.
    import threading

    store = ShardedStore.from_store(
        small_lubm_store, shards=SHARDS, updatable=True, ontology=small_lubm.ontology
    )
    predicate = URI("http://serving.succinct-edge.example/w")
    per_thread = 50
    threads = []

    def writer(tag: str) -> None:
        for index in range(per_thread):
            store.insert(
                Triple(
                    URI(f"http://serving.succinct-edge.example/{tag}/{index}"),
                    predicate,
                    URI(f"http://serving.succinct-edge.example/{tag}/v{index}"),
                )
            )

    for tag in ("a", "b", "c", "d"):
        threads.append(threading.Thread(target=writer, args=(tag,)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert store.data_epoch == 4 * per_thread
    rows = store.query(
        "SELECT ?s ?o WHERE { ?s <http://serving.succinct-edge.example/w> ?o }",
        reasoning=False,
    )
    # Every written subject resolves to its own value: aliased identifiers
    # would collapse rows or swap objects across writers.
    assert len(rows) == 4 * per_thread
    for subject, obj in rows.to_tuples():
        head, _, index = str(subject).rpartition("/")
        assert str(obj) == f"{head}/v{index}", (subject, obj)


def test_maybe_compact_counts_triggered_shards(small_lubm, small_lubm_store):
    from repro.store.delta import CompactionPolicy

    store = ShardedStore.from_store(
        small_lubm_store,
        shards=SHARDS,
        updatable=True,
        ontology=small_lubm.ontology,
        policy=CompactionPolicy(max_delta_operations=1, min_delta_operations=0),
    )
    assert store.maybe_compact() == 0  # no pending deltas anywhere
    store.insert(Triple(URI("http://x.org/new-subj"), URI("http://x.org/p"), Literal(1)))
    assert store.maybe_compact() == 1  # only the written shard triggered
    assert store.compaction_epoch == 1
