"""Bit vector with constant-time rank and sampled-directory select.

The bitmaps (BM) of SuccinctEdge connect the property, subject and object
layers of its PSO representation (paper Section 4, Figure 5).  They must
support the three SDS primitives:

* ``access(i)`` — the bit at position ``i``;
* ``rank(i, c)`` — number of occurrences of bit ``c`` in positions ``[0, i)``
  (the sdsl-lite convention, exclusive of ``i``);
* ``select(j, c)`` — position of the ``j``-th (1-based) occurrence of ``c``.

The implementation packs bits into 64-bit words and keeps a two-level rank
directory (superblocks of 8 words, per-word cumulative counts) giving O(1)
``rank``.  ``select`` uses a sampled select directory — the word index of
every ``k``-th 1 (and 0) is recorded at construction — so each call binary
searches only the handful of words between two samples instead of the whole
directory, the sdsl-lite ``select_support_mcl`` discipline.

On top of the single-call primitives the class exposes the batched kernels
the query layer is built on: ``rank_many`` (one pass over many indices),
``select_many`` / ``select_range`` (one forward scan materialising many
occurrence positions) and ``scan_ones`` (word-at-a-time extraction of every
set bit in an index range).  A batched call does the work of O(results)
single-call round-trips while registering as one kernel invocation.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.sds.kernels import (
    KERNEL_COUNTS,
    WORD_BITS as _WORD_BITS,
    WORD_MASK as _WORD_MASK,
    nth_set_bit as _nth_set_bit_kernel,
    popcount as _popcount,
    set_offsets as _set_offsets,
)

_WORDS_PER_SUPERBLOCK = 8
_SUPERBLOCK_BITS = _WORD_BITS * _WORDS_PER_SUPERBLOCK

#: One select sample is stored per this many occurrences of each bit value.
#: The stride trades directory size against the width of the per-call binary
#: search window; 8192 keeps the directory under ~0.1% of the payload while
#: still bounding every select to one sample stride.
_SELECT_SAMPLE = 8192

for _name in ("rank", "select", "rank_many", "select_many", "scan", "access", "access_range"):
    KERNEL_COUNTS.setdefault(_name, 0)


class BitVectorBuilder:
    """Incremental builder for :class:`BitVector`.

    Bits are packed straight into 64-bit words; besides the per-bit
    ``append`` the builder ingests whole words (``extend_words``), byte
    payloads, runs (``append_run``) and existing :class:`BitVector` instances
    word-at-a-time, which is what keeps store construction time bounded by
    the number of *words*, not the number of bits.
    """

    def __init__(self) -> None:
        self._words: List[int] = []
        self._current = 0
        self._filled = 0  # bits occupied in ``_current``

    def __len__(self) -> int:
        return len(self._words) * _WORD_BITS + self._filled

    def append(self, bit: int) -> None:
        """Append a single bit (``0`` or ``1``)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if bit:
            self._current |= 1 << self._filled
        self._filled += 1
        if self._filled == _WORD_BITS:
            self._words.append(self._current)
            self._current = 0
            self._filled = 0

    def append_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit`` (word-at-a-time for long runs)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if count < 0:
            raise ValueError(f"run length must be non-negative, got {count}")
        remaining = count
        # Fill the partial word first.
        while remaining and self._filled:
            if bit:
                self._current |= 1 << self._filled
            self._filled += 1
            remaining -= 1
            if self._filled == _WORD_BITS:
                self._words.append(self._current)
                self._current = 0
                self._filled = 0
        full_words, tail = divmod(remaining, _WORD_BITS)
        if full_words:
            self._words.extend([_WORD_MASK if bit else 0] * full_words)
        if tail:
            self._current = ((1 << tail) - 1) if bit else 0
            self._filled = tail

    def extend(self, bits: Union["BitVector", bytes, bytearray, memoryview, Iterable[int]]) -> None:
        """Append every bit of ``bits`` in order.

        Word-level fast paths cover :class:`BitVector` payloads and
        bytes-like objects (little-endian bit order within each byte);
        arbitrary iterables fall back to a tight per-bit loop.
        """
        if isinstance(bits, BitVector):
            self.extend_words(bits._words, len(bits))
            return
        if isinstance(bits, (bytes, bytearray, memoryview)):
            data = bytes(bits)
            self.extend_words(_words_from_bytes(data), len(data) * 8)
            return
        current = self._current
        filled = self._filled
        words = self._words
        for bit in bits:
            if bit:
                if bit != 1:
                    self._current, self._filled = current, filled
                    raise ValueError(f"bit must be 0 or 1, got {bit!r}")
                current |= 1 << filled
            elif bit != 0:
                self._current, self._filled = current, filled
                raise ValueError(f"bit must be 0 or 1, got {bit!r}")
            filled += 1
            if filled == _WORD_BITS:
                words.append(current)
                current = 0
                filled = 0
        self._current = current
        self._filled = filled

    def extend_words(self, words: Iterable[int], bit_count: int) -> None:
        """Append ``bit_count`` bits packed little-endian in 64-bit ``words``."""
        if bit_count < 0:
            raise ValueError(f"bit_count must be non-negative, got {bit_count}")
        current = self._current
        filled = self._filled
        out = self._words
        remaining = bit_count
        for word in words:
            if remaining <= 0:
                break
            take = _WORD_BITS if remaining >= _WORD_BITS else remaining
            word &= _WORD_MASK if take == _WORD_BITS else (1 << take) - 1
            current |= (word << filled) & _WORD_MASK
            if filled + take >= _WORD_BITS:
                out.append(current)
                spill = filled + take - _WORD_BITS
                current = word >> (take - spill) if spill else 0
                filled = spill
            else:
                filled += take
            remaining -= take
        if remaining > 0:
            raise ValueError(f"word payload exhausted with {remaining} bits still requested")
        self._current = current
        self._filled = filled

    def build(self) -> "BitVector":
        """Freeze the builder into an immutable :class:`BitVector`."""
        words = list(self._words)
        if self._filled:
            words.append(self._current)
        return BitVector._from_words(words, len(self))


def _words_from_bytes(data: bytes) -> List[int]:
    """Pack a byte string into little-endian 64-bit words."""
    padded = data + b"\x00" * (-len(data) % 8)
    words = array("Q")
    words.frombytes(padded)
    if sys.byteorder == "big":
        words.byteswap()
    return list(words)


class BitVector:
    """Immutable bit sequence with rank/select support.

    Instances are typically produced by :class:`BitVectorBuilder` or by the
    convenience constructor ``BitVector(bits)`` where ``bits`` is any iterable
    of 0/1 integers.
    """

    __slots__ = (
        "_words",
        "_length",
        "_superblock_ranks",
        "_word_ranks",
        "_ones",
        "_one_samples",
        "_zero_samples",
    )

    def __init__(self, bits: Iterable[int] = ()) -> None:
        builder = BitVectorBuilder()
        builder.extend(bits)
        frozen = builder.build()
        self._words = frozen._words
        self._length = frozen._length
        self._superblock_ranks = frozen._superblock_ranks
        self._word_ranks = frozen._word_ranks
        self._ones = frozen._ones
        self._one_samples = frozen._one_samples
        self._zero_samples = frozen._zero_samples

    @classmethod
    def _from_words(cls, words: List[int], length: int) -> "BitVector":
        self = object.__new__(cls)
        self._words = array("Q", words)
        self._length = length
        self._build_directories()
        return self

    @classmethod
    def from_bytes(cls, data: Union[bytes, bytearray, memoryview], length: Optional[int] = None) -> "BitVector":
        """Build from a little-endian byte payload (bit ``i`` = byte ``i//8``, bit ``i%8``)."""
        payload = bytes(data)
        bit_length = len(payload) * 8 if length is None else length
        if bit_length > len(payload) * 8:
            raise ValueError(f"length {bit_length} exceeds payload of {len(payload) * 8} bits")
        words = _words_from_bytes(payload)
        words = words[: (bit_length + _WORD_BITS - 1) // _WORD_BITS]
        if bit_length % _WORD_BITS and words:
            words[-1] &= (1 << (bit_length % _WORD_BITS)) - 1
        return cls._from_words(words, bit_length)

    @classmethod
    def from_buffers(
        cls,
        words,
        length: int,
        ones: int,
        word_ranks,
        superblock_ranks,
        one_samples,
        zero_samples,
    ) -> "BitVector":
        """Assemble a vector around pre-built word buffers without any rebuild.

        This is the persistence-v4 zero-copy constructor: every argument is a
        64-bit word buffer (``array('Q')`` or a read-only ``memoryview``
        aliasing a mapped store image, see
        :func:`repro.sds.kernels.words_view`) holding exactly what
        :meth:`_build_directories` would have produced.  Nothing is copied or
        recomputed — the rank/select directories are trusted as persisted, so
        construction cost is O(1) regardless of the vector's length.
        """
        self = object.__new__(cls)
        self._words = words
        self._length = length
        self._ones = ones
        self._word_ranks = word_ranks
        self._superblock_ranks = superblock_ranks
        self._one_samples = one_samples
        self._zero_samples = zero_samples
        return self

    def _build_directories(self) -> None:
        superblock_ranks = array("Q")
        word_ranks = array("Q")
        one_samples = array("Q")
        zero_samples = array("Q")
        running = 0
        zeros_running = 0
        # The first stride needs no sample (the search window starts at word
        # 0 anyway), so vectors shorter than one stride carry no select
        # directory at all — important for the many small wavelet-tree node
        # bitmaps.
        next_one_target = _SELECT_SAMPLE + 1
        next_zero_target = _SELECT_SAMPLE + 1
        length = self._length
        for index, word in enumerate(self._words):
            if index % _WORDS_PER_SUPERBLOCK == 0:
                superblock_ranks.append(running)
            word_ranks.append(running)
            ones_here = _popcount(word)
            bits_here = length - index * _WORD_BITS
            if bits_here > _WORD_BITS:
                bits_here = _WORD_BITS
            zeros_here = bits_here - ones_here
            while running + ones_here >= next_one_target:
                one_samples.append(index)
                next_one_target += _SELECT_SAMPLE
            while zeros_running + zeros_here >= next_zero_target:
                zero_samples.append(index)
                next_zero_target += _SELECT_SAMPLE
            running += ones_here
            zeros_running += zeros_here
        self._superblock_ranks = superblock_ranks
        self._word_ranks = word_ranks
        self._ones = running
        self._one_samples = one_samples
        self._zero_samples = zero_samples

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        remaining = self._length
        for word in self._words:
            for offset in range(min(remaining, _WORD_BITS)):
                yield (word >> offset) & 1
            remaining -= _WORD_BITS
            if remaining <= 0:
                break

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._length == other._length and self._words == other._words

    def __hash__(self) -> int:
        return hash((self._length, bytes(self._words.tobytes())))

    def __repr__(self) -> str:
        preview = "".join(str(b) for b in self.to_list()[:32])
        suffix = "..." if self._length > 32 else ""
        return f"BitVector(len={self._length}, bits={preview}{suffix})"

    # ------------------------------------------------------------------ #
    # SDS operations
    # ------------------------------------------------------------------ #

    def access(self, index: int) -> int:
        """Return the bit stored at ``index``."""
        if not 0 <= index < self._length:
            raise IndexError(f"bit index {index} out of range [0, {self._length})")
        word_index, offset = divmod(index, _WORD_BITS)
        return (self._words[word_index] >> offset) & 1

    __getitem__ = access

    def count(self, bit: int = 1) -> int:
        """Total number of occurrences of ``bit`` in the vector."""
        if bit == 1:
            return self._ones
        if bit == 0:
            return self._length - self._ones
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")

    def rank(self, index: int, bit: int = 1) -> int:
        """Number of occurrences of ``bit`` in positions ``[0, index)``.

        ``index`` may equal ``len(self)`` (ranking the whole vector).
        """
        if not 0 <= index <= self._length:
            raise IndexError(f"rank index {index} out of range [0, {self._length}]")
        KERNEL_COUNTS["rank"] += 1
        ones = self._rank1(index)
        if bit == 1:
            return ones
        if bit == 0:
            return index - ones
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")

    def _rank1(self, index: int) -> int:
        if index == 0:
            return 0
        word_index, offset = divmod(index, _WORD_BITS)
        if word_index >= len(self._words):
            return self._ones
        partial = self._words[word_index] & ((1 << offset) - 1) if offset else 0
        return self._word_ranks[word_index] + _popcount(partial)

    def _access_rank1(self, index: int) -> Tuple[int, int]:
        """Fused kernel: ``(access(index), rank1(index))`` with one word read.

        The wavelet-tree descent needs both values at every level; fusing
        them halves the bitmap reads on the hottest path.
        """
        word_index, offset = divmod(index, _WORD_BITS)
        word = self._words[word_index]
        partial = word & ((1 << offset) - 1) if offset else 0
        return (word >> offset) & 1, self._word_ranks[word_index] + _popcount(partial)

    def rank_many(self, indices: Iterable[int], bit: int = 1) -> List[int]:
        """Batched :meth:`rank` over many indices in one kernel call."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        KERNEL_COUNTS["rank_many"] += 1
        words = self._words
        word_ranks = self._word_ranks
        length = self._length
        ones = self._ones
        word_count = len(words)
        pc = _popcount
        out: List[int] = []
        push = out.append
        for index in indices:
            if not 0 <= index <= length:
                raise IndexError(f"rank index {index} out of range [0, {length}]")
            word_index, offset = divmod(index, _WORD_BITS)
            if word_index >= word_count:
                result = ones
            elif offset:
                result = word_ranks[word_index] + pc(words[word_index] & ((1 << offset) - 1))
            else:
                result = word_ranks[word_index]
            push(result if bit == 1 else index - result)
        return out

    def select(self, occurrence: int, bit: int = 1) -> int:
        """Index of the ``occurrence``-th (1-based) occurrence of ``bit``.

        Raises :class:`ValueError` when the vector holds fewer than
        ``occurrence`` occurrences of ``bit``.
        """
        if occurrence <= 0:
            raise ValueError("select occurrence is 1-based and must be positive")
        KERNEL_COUNTS["select"] += 1
        if bit == 1:
            return self._select1(occurrence)
        if bit == 0:
            return self._select0(occurrence)
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")

    def _select1(self, occurrence: int) -> int:
        if occurrence > self._ones:
            raise ValueError(
                f"select(1) out of range: asked occurrence {occurrence}, "
                f"vector has {self._ones} set bits"
            )
        word_index = self._select_word(occurrence, 1)
        remaining = occurrence - self._word_ranks[word_index]
        return word_index * _WORD_BITS + _nth_set_bit_kernel(self._words[word_index], remaining)

    def _select0(self, occurrence: int) -> int:
        zeros_total = self._length - self._ones
        if occurrence > zeros_total:
            raise ValueError(
                f"select(0) out of range: asked occurrence {occurrence}, "
                f"vector has {zeros_total} zero bits"
            )
        word_index = self._select_word(occurrence, 0)
        zeros_before = word_index * _WORD_BITS - self._word_ranks[word_index]
        remaining = occurrence - zeros_before
        inverted = (~self._words[word_index]) & _WORD_MASK
        position = word_index * _WORD_BITS + _nth_set_bit_kernel(inverted, remaining)
        if position >= self._length:
            raise ValueError(
                f"select(0) out of range: occurrence {occurrence} falls past "
                f"the end of the vector"
            )
        return position

    def _select_word(self, occurrence: int, bit: int) -> int:
        """Word containing the ``occurrence``-th ``bit``, via the sampled directory.

        The samples bound the binary search to the words spanning one sample
        stride (``_SELECT_SAMPLE`` occurrences) instead of the whole vector.
        """
        samples = self._one_samples if bit == 1 else self._zero_samples
        # ``samples[s]`` holds the word of occurrence ``(s + 1) * stride + 1``;
        # the first stride searches from word 0.
        sample_index = (occurrence - 1) // _SELECT_SAMPLE
        if 1 <= sample_index <= len(samples):
            lo = samples[sample_index - 1]
        else:
            lo = 0
        if sample_index < len(samples):
            hi = samples[sample_index]
        else:
            hi = len(self._words) - 1
        word_ranks = self._word_ranks
        if bit == 1:
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if word_ranks[mid] < occurrence:
                    lo = mid
                else:
                    hi = mid - 1
        else:
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if mid * _WORD_BITS - word_ranks[mid] < occurrence:
                    lo = mid
                else:
                    hi = mid - 1
        return lo

    def select_many(self, occurrences: Sequence[int], bit: int = 1) -> List[int]:
        """Positions of many (ascending, 1-based) occurrences in one forward scan.

        This is the batched counterpart of :meth:`select`: the word array is
        traversed once, decoding each word's set-bit offsets at most once, so
        materialising ``k`` occurrence positions costs O(words spanned + k)
        instead of ``k`` independent directory searches.
        """
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        occurrences = list(occurrences)
        if not occurrences:
            return []
        KERNEL_COUNTS["select_many"] += 1
        total = self._ones if bit == 1 else self._length - self._ones
        first = occurrences[0]
        if first <= 0:
            raise ValueError("select occurrence is 1-based and must be positive")
        if occurrences[-1] > total:
            raise ValueError(
                f"select({bit}) out of range: asked occurrence {occurrences[-1]}, "
                f"vector has {total} such bits"
            )
        words = self._words
        word_ranks = self._word_ranks
        word_count = len(words)
        length = self._length
        ones = self._ones

        def count_through(word_index: int) -> int:
            """Occurrences of ``bit`` in words ``[0, word_index]``."""
            end = word_ranks[word_index + 1] if word_index + 1 < word_count else ones
            if bit == 1:
                return end
            bits_through = (word_index + 1) * _WORD_BITS
            if bits_through > length:
                bits_through = length
            return bits_through - end

        word_index = self._select_word(first, bit)
        word = words[word_index]
        if bit == 0:
            word = ~word & _WORD_MASK
        # Offsets of the current word are decoded lazily: the first hit in a
        # word uses the table-skipping ``nth_set_bit`` (cheap for dense
        # words probed once), a second hit decodes the full offset list so a
        # contiguous sweep pays the per-word decode only once.
        offsets: Optional[List[int]] = None
        hits_in_word = 0
        out: List[int] = []
        push = out.append
        previous = 0
        for occurrence in occurrences:
            if occurrence < previous:
                raise ValueError("select_many occurrences must be ascending")
            previous = occurrence
            if occurrence > count_through(word_index):
                # The common contiguous case lands in the next word; anything
                # further re-seeks through the sampled directory (sparse
                # occurrences may skip arbitrarily many words, so a linear
                # walk would degenerate).
                if word_index + 1 < word_count and occurrence <= count_through(word_index + 1):
                    word_index += 1
                else:
                    word_index = self._select_word(occurrence, bit)
                word = words[word_index]
                if bit == 0:
                    word = ~word & _WORD_MASK
                offsets = None
                hits_in_word = 0
            before = (
                word_ranks[word_index]
                if bit == 1
                else word_index * _WORD_BITS - word_ranks[word_index]
            )
            hits_in_word += 1
            if offsets is None and hits_in_word > 1:
                offsets = _set_offsets(word)
            if offsets is None:
                offset = _nth_set_bit_kernel(word, occurrence - before)
            else:
                offset = offsets[occurrence - before - 1]
            position = word_index * _WORD_BITS + offset
            if position >= length:
                raise ValueError(
                    f"select({bit}) out of range: occurrence {occurrence} falls past "
                    f"the end of the vector"
                )
            push(position)
        return out

    def select_range(self, first: int, last: int, bit: int = 1) -> List[int]:
        """Positions of occurrences ``first..last`` (1-based, inclusive) of ``bit``.

        Equivalent to ``[select(j, bit) for j in range(first, last + 1)]`` but
        computed in a single forward scan.
        """
        if first <= 0:
            raise ValueError("select occurrence is 1-based and must be positive")
        if last < first:
            return []
        if last - first <= 1:
            # Tiny ranges (single runs probed during bind-propagation joins)
            # skip the scan machinery.
            KERNEL_COUNTS["select_many"] += 1
            if bit == 1:
                return [self._select1(j) for j in range(first, last + 1)]
            return [self._select0(j) for j in range(first, last + 1)]
        return self.select_many(range(first, last + 1), bit)

    def scan_ones(self, start: int = 0, stop: Optional[int] = None) -> List[int]:
        """Positions of every set bit in ``[start, stop)``, word-at-a-time."""
        length = self._length
        if stop is None:
            stop = length
        start = max(0, start)
        stop = min(length, stop)
        if start >= stop:
            return []
        KERNEL_COUNTS["scan"] += 1
        words = self._words
        out: List[int] = []
        push = out.append
        first_word = start // _WORD_BITS
        last_word = (stop - 1) // _WORD_BITS
        for word_index in range(first_word, last_word + 1):
            word = words[word_index]
            if not word:
                continue
            if word_index == first_word and start % _WORD_BITS:
                word &= _WORD_MASK ^ ((1 << (start % _WORD_BITS)) - 1)
            if word_index == last_word and stop % _WORD_BITS:
                word &= (1 << (stop % _WORD_BITS)) - 1
            base = word_index * _WORD_BITS
            while word:
                low = word & -word
                push(base + low.bit_length() - 1)
                word ^= low
        return out

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def size_in_bytes(self, include_directories: bool = True) -> int:
        """Approximate storage footprint in bytes.

        ``include_directories`` distinguishes the raw bit payload from the
        auxiliary rank/select directories.  The rank overhead is accounted at
        the reference layout cost of sdsl-lite's ``rank_support_v`` (25% of
        the payload); the sampled select directory adds its word-index
        samples at 8 bytes each.
        """
        payload = len(self._words) * 8
        if not include_directories:
            return payload
        directories = (
            (payload + 3) // 4
            + len(self._superblock_ranks) * 8
            + (len(self._one_samples) + len(self._zero_samples)) * 8
        )
        return payload + directories

    def to_list(self) -> List[int]:
        """Materialise the bits as a plain Python list (testing helper)."""
        return list(self)
