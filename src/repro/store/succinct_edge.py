"""SuccinctEdge facade: the public entry point of the reproduction.

A :class:`SuccinctEdge` instance bundles the dictionaries, the three storage
layouts and the statistics, and exposes:

* :meth:`SuccinctEdge.from_graph` — build a store from a data graph and an
  optional ontology;
* :meth:`SuccinctEdge.query` — run a SPARQL SELECT query (subset), with
  LiteMat-based RDFS reasoning enabled by default;
* :meth:`SuccinctEdge.match` — low-level triple-pattern matching over the
  encoded stores (the building block of the query executor and the ground
  truth used in tests);
* storage accounting methods mirroring the measurements of the paper's
  evaluation (dictionary size, triple storage size, RAM footprint).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

from repro.dictionary.statistics import DictionaryStatistics
from repro.dictionary.term_dictionary import (
    ConceptDictionary,
    InstanceDictionary,
    PropertyDictionary,
)
from repro.ontology.schema import OntologySchema
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import Literal, Term, Triple, URI
from repro.sparql.ast import Query as QueryAst
from repro.sparql.bindings import AskResult, ResultSet
from repro.store.datatype_store import DatatypeTripleStore
from repro.store.rdftype_store import RDFTypeStore
from repro.store.triple_store import ObjectTripleStore


class SuccinctEdge:
    """Compact, self-indexed, in-memory RDF store with query-time reasoning."""

    def __init__(
        self,
        schema: OntologySchema,
        concepts: ConceptDictionary,
        properties: PropertyDictionary,
        instances: InstanceDictionary,
        object_store: ObjectTripleStore,
        datatype_store: DatatypeTripleStore,
        type_store: RDFTypeStore,
        statistics: DictionaryStatistics,
        skipped_triples: int = 0,
    ) -> None:
        self.schema = schema
        self.concepts = concepts
        self.properties = properties
        self.instances = instances
        self.object_store = object_store
        self.datatype_store = datatype_store
        self.type_store = type_store
        self.statistics = statistics
        self.skipped_triples = skipped_triples

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, data: Graph, ontology: Optional[Graph] = None) -> "SuccinctEdge":
        """Build a store from a data graph and an optional ontology graph."""
        from repro.store.builder import StoreBuilder

        return StoreBuilder(ontology=ontology).build(data)

    # ------------------------------------------------------------------ #
    # persistence (store images, see docs/persistence.md)
    # ------------------------------------------------------------------ #

    #: When this store was loaded from a v4 image, the
    #: :class:`~repro.store.persistence.StoreImage` handle keeping the mapping
    #: (or byte buffer) alive; ``None`` for built / v3-loaded stores.
    image = None

    @classmethod
    def load(cls, path, mmap: bool = True) -> "SuccinctEdge":
        """Load a store from a saved file (v3 stream or v4 image).

        For v4 images with ``mmap=True`` (the default) the file is memory
        mapped and the succinct layouts alias the mapping directly — startup
        cost is independent of the triple count, and the handle stays
        reachable as ``store.image``.  v3 streams are decoded and rebuilt in
        memory regardless of ``mmap``.
        """
        from repro.store.persistence import load_store

        return load_store(path, mmap=mmap)

    def save_image(self, path, atomic: bool = False) -> int:
        """Write this store as a v4 store image at ``path``; returns the size.

        With ``atomic=True`` the image is staged in a temporary sibling file,
        fsynced, and moved into place with ``os.replace`` so a concurrent
        reader never observes a half-written image.
        """
        from repro.store.persistence import save_store_image

        return save_store_image(self, path, atomic=atomic)

    # ------------------------------------------------------------------ #
    # live updates (delta overlay, see docs/update_lifecycle.md)
    # ------------------------------------------------------------------ #

    #: Snapshot-epoch accounting.  An immutable store never moves past epoch
    #: ``(0, 0)``; :class:`~repro.store.updatable.UpdatableSuccinctEdge`
    #: increments ``data_epoch`` per applied write and ``compaction_epoch``
    #: per compaction.
    data_epoch: int = 0
    compaction_epoch: int = 0

    @property
    def snapshot_epoch(self) -> Tuple[int, int]:
        """``(compaction_epoch, data_epoch)`` — lexicographically monotonic."""
        return self.compaction_epoch, self.data_epoch

    def updatable(self, policy=None, ontology: Optional[Graph] = None) -> "SuccinctEdge":
        """A live view of this store: same data, plus insert/delete/compact.

        Returns an :class:`~repro.store.updatable.UpdatableSuccinctEdge`
        overlaying this (still immutable) store with an in-memory delta; the
        dictionaries and statistics are shared, not copied.  Pass the
        ``ontology`` graph this store was built from so that a later
        ``rebuild()`` can re-encode with the full hierarchy.
        """
        from repro.store.updatable import UpdatableSuccinctEdge  # deferred: avoids an import cycle

        return UpdatableSuccinctEdge(self, policy=policy, ontology=ontology)

    def insert(self, triple: Triple) -> bool:
        """Immutable stores reject writes; use :meth:`updatable` for a live view."""
        raise TypeError(
            "this SuccinctEdge is immutable; call .updatable() (or build with "
            "UpdatableSuccinctEdge.from_graph) to get a store with a write path"
        )

    def delete(self, triple: Triple) -> bool:
        """Immutable stores reject writes; use :meth:`updatable` for a live view."""
        raise TypeError(
            "this SuccinctEdge is immutable; call .updatable() (or build with "
            "UpdatableSuccinctEdge.from_graph) to get a store with a write path"
        )

    def compact(self):
        """Immutable stores have no delta to compact; see :meth:`updatable`."""
        raise TypeError(
            "this SuccinctEdge is immutable and has no delta to compact; "
            "compaction applies to UpdatableSuccinctEdge stores"
        )

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def triple_count(self) -> int:
        """Number of stored triples across the three layouts."""
        return len(self.object_store) + len(self.datatype_store) + len(self.type_store)

    def __len__(self) -> int:
        return self.triple_count

    def __repr__(self) -> str:
        return (
            f"SuccinctEdge({self.triple_count} triples: "
            f"{len(self.object_store)} object, {len(self.datatype_store)} datatype, "
            f"{len(self.type_store)} rdf:type)"
        )

    # ------------------------------------------------------------------ #
    # term <-> identifier helpers
    # ------------------------------------------------------------------ #

    def decode_instance(self, identifier: int) -> Term:
        """Individual carrying ``identifier`` in the instance dictionary."""
        return self.instances.extract(identifier)

    def decode_concept(self, identifier: int) -> Term:
        """Concept carrying ``identifier`` in the concept dictionary."""
        return self.concepts.extract(identifier)

    def decode_property(self, identifier: int) -> Term:
        """Property carrying ``identifier`` in the property dictionary."""
        return self.properties.extract(identifier)

    # ------------------------------------------------------------------ #
    # triple pattern matching (explicit triples only, no reasoning)
    # ------------------------------------------------------------------ #

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield explicit triples matching the pattern (``None`` = wildcard)."""
        if predicate is None:
            yield from self._match_any_predicate(subject, obj)
            return
        if predicate == RDF_TYPE:
            yield from self._match_rdf_type(subject, obj)
            return
        property_id = self.properties.try_locate(predicate)
        if property_id is None:
            return
        yield from self._match_object_property(property_id, predicate, subject, obj)
        yield from self._match_datatype_property(property_id, predicate, subject, obj)

    def _match_any_predicate(self, subject: Optional[Term], obj: Optional[Term]) -> Iterator[Triple]:
        yield from self._match_rdf_type(subject, obj)
        for property_id in self.object_store.properties:
            predicate = self.properties.extract(property_id)
            yield from self._match_object_property(property_id, predicate, subject, obj)
        for property_id in self.datatype_store.properties:
            predicate = self.properties.extract(property_id)
            yield from self._match_datatype_property(property_id, predicate, subject, obj)

    def _match_rdf_type(self, subject: Optional[Term], obj: Optional[Term]) -> Iterator[Triple]:
        if obj is not None:
            if not isinstance(obj, URI):
                return
            concept_id = self.concepts.try_locate(obj)
            if concept_id is None:
                return
            subject_id = None if subject is None else self.instances.try_locate(subject)
            if subject is not None and subject_id is None:
                return
            if subject_id is not None:
                # Fully bound: one O(log n) membership probe instead of
                # enumerating the whole concept run.
                if self.type_store.contains(subject_id, concept_id):
                    yield Triple(subject, RDF_TYPE, obj)  # type: ignore[arg-type]
                return
            for candidate in self.type_store.subjects_of(concept_id):
                yield Triple(self.instances.extract(candidate), RDF_TYPE, obj)  # type: ignore[arg-type]
            return
        if subject is not None:
            subject_id = self.instances.try_locate(subject)
            if subject_id is None:
                return
            for concept_id in self.type_store.concepts_of(subject_id):
                yield Triple(subject, RDF_TYPE, self.concepts.extract(concept_id))  # type: ignore[arg-type]
            return
        for subject_id, concept_id in self.type_store.iter_triples():
            yield Triple(
                self.instances.extract(subject_id),  # type: ignore[arg-type]
                RDF_TYPE,
                self.concepts.extract(concept_id),
            )

    def _match_object_property(
        self,
        property_id: int,
        predicate: URI,
        subject: Optional[Term],
        obj: Optional[Term],
    ) -> Iterator[Triple]:
        if not self.object_store.has_property(property_id):
            return
        if obj is not None and isinstance(obj, Literal):
            return
        subject_id = None if subject is None else self.instances.try_locate(subject)
        if subject is not None and subject_id is None:
            return
        object_id = None if obj is None else self.instances.try_locate(obj)
        if obj is not None and object_id is None:
            return
        if subject_id is not None and object_id is not None:
            if self.object_store.contains(subject_id, property_id, object_id):
                yield Triple(subject, predicate, obj)  # type: ignore[arg-type]
            return
        if subject_id is not None:
            for found_object in self.object_store.objects_for(subject_id, property_id):
                yield Triple(subject, predicate, self.instances.extract(found_object))  # type: ignore[arg-type]
            return
        if object_id is not None:
            for found_subject in self.object_store.subjects_for(property_id, object_id):
                yield Triple(self.instances.extract(found_subject), predicate, obj)  # type: ignore[arg-type]
            return
        for found_subject, found_object in self.object_store.pairs_for_property(property_id):
            yield Triple(
                self.instances.extract(found_subject),  # type: ignore[arg-type]
                predicate,
                self.instances.extract(found_object),
            )

    def _match_datatype_property(
        self,
        property_id: int,
        predicate: URI,
        subject: Optional[Term],
        obj: Optional[Term],
    ) -> Iterator[Triple]:
        if not self.datatype_store.has_property(property_id):
            return
        if obj is not None and not isinstance(obj, Literal):
            return
        subject_id = None if subject is None else self.instances.try_locate(subject)
        if subject is not None and subject_id is None:
            return
        if subject_id is not None:
            for literal in self.datatype_store.literals_for(subject_id, property_id):
                if obj is not None and literal != obj:
                    continue
                yield Triple(subject, predicate, literal)  # type: ignore[arg-type]
            return
        if obj is not None:
            for found_subject in self.datatype_store.subjects_for(property_id, obj):
                yield Triple(self.instances.extract(found_subject), predicate, obj)  # type: ignore[arg-type]
            return
        for found_subject, literal in self.datatype_store.pairs_for_property(property_id):
            yield Triple(self.instances.extract(found_subject), predicate, literal)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # SPARQL
    # ------------------------------------------------------------------ #

    def query(
        self,
        query: Union[str, "QueryAst"],
        reasoning: bool = True,
    ) -> Union[ResultSet, AskResult]:
        """Run a SPARQL query (SELECT or ASK, supported subset).

        The WHERE clause may use basic graph patterns, ``FILTER``, ``BIND``,
        ``UNION``, ``OPTIONAL`` and ``VALUES``; SELECT queries additionally
        support ``DISTINCT``, ``GROUP BY`` with the ``COUNT`` / ``SUM`` /
        ``MIN`` / ``MAX`` / ``AVG`` / ``SAMPLE`` aggregates,
        ``(expr AS ?var)`` projections, ``ORDER BY``, ``OFFSET`` and
        ``LIMIT`` (see ``docs/sparql_support.md``).  Evaluation is a
        streaming operator pipeline: ``LIMIT`` and ``ASK`` terminate early
        instead of materializing full answer sets.

        With ``reasoning`` (the default, and the paper's native mode) the
        engine uses LiteMat identifier intervals to answer concept and
        property hierarchy inferences at query time; without it only explicit
        triples are matched.

        Returns a :class:`~repro.sparql.bindings.ResultSet` for SELECT and a
        boolean-valued :class:`~repro.sparql.bindings.AskResult` for ASK.
        """
        from repro.query.engine import QueryEngine  # deferred: avoids an import cycle

        return QueryEngine(self, reasoning=reasoning).execute(query)

    # ------------------------------------------------------------------ #
    # storage accounting (evaluation Section 7.3.2)
    # ------------------------------------------------------------------ #

    def dictionary_size_in_bytes(self) -> int:
        """Serialised size of the three dictionaries (Figure 9)."""
        return (
            self.concepts.size_in_bytes()
            + self.properties.size_in_bytes()
            + self.instances.size_in_bytes()
        )

    def triple_storage_size_in_bytes(self) -> int:
        """Serialised size of the triple layouts, dictionaries excluded (Figure 10)."""
        return (
            self.object_store.size_in_bytes()
            + self.datatype_store.size_in_bytes()
            + self.type_store.size_in_bytes()
        )

    def memory_footprint_in_bytes(self) -> int:
        """Total in-memory footprint: dictionaries plus triple storage (Figure 11)."""
        return self.dictionary_size_in_bytes() + self.triple_storage_size_in_bytes()

    # ------------------------------------------------------------------ #
    # export helpers
    # ------------------------------------------------------------------ #

    def export_graph(self) -> Graph:
        """Rebuild a :class:`~repro.rdf.graph.Graph` of every stored triple."""
        graph = Graph()
        for triple in self.match(None, None, None):
            graph.add(triple)
        return graph

    def lubm_style_summary(self) -> Tuple[int, int, int]:
        """Triple counts per layout ``(object, datatype, rdf:type)``."""
        return len(self.object_store), len(self.datatype_store), len(self.type_store)
