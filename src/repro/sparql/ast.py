"""Abstract syntax tree of the supported SPARQL subset.

The grammar covers what the paper's 26 evaluation queries and its motivating
example need: ``SELECT`` (possibly ``*``) over a WHERE clause made of triple
patterns, ``FILTER`` constraints, ``BIND`` assignments and ``UNION`` branches
(the baselines' reasoning rewrites are unions of BGPs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union as TypingUnion

from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import BlankNode, Literal, URI


@dataclass(frozen=True)
class Variable:
    """A SPARQL variable, e.g. ``?x``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A slot of a triple pattern: either a constant RDF term or a variable.
PatternTerm = TypingUnion[URI, BlankNode, Literal, Variable]


@dataclass(frozen=True)
class TriplePattern:
    """A single triple pattern of a basic graph pattern."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> List[Variable]:
        """Variables appearing in the pattern, in subject/predicate/object order."""
        return [slot for slot in (self.subject, self.predicate, self.object) if isinstance(slot, Variable)]

    def variable_names(self) -> List[str]:
        """Names of the variables appearing in the pattern."""
        return [variable.name for variable in self.variables()]

    @property
    def is_rdf_type(self) -> bool:
        """Whether the predicate is the constant ``rdf:type``."""
        return isinstance(self.predicate, URI) and self.predicate == RDF_TYPE

    def shape(self) -> str:
        """The paper's TP classification string, e.g. ``"s,p,?o"``.

        Constants are lower-case letters, variables are prefixed with ``?``.
        """
        subject = "?s" if isinstance(self.subject, Variable) else "s"
        predicate = "?p" if isinstance(self.predicate, Variable) else "p"
        obj = "?o" if isinstance(self.object, Variable) else "o"
        return f"{subject},{predicate},{obj}"

    def __str__(self) -> str:
        def fmt(slot: PatternTerm) -> str:
            if isinstance(slot, Variable):
                return str(slot)
            return slot.n3()

        return f"{fmt(self.subject)} {fmt(self.predicate)} {fmt(self.object)} ."


# --------------------------------------------------------------------- #
# FILTER / BIND expression nodes
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Comparison:
    """A binary comparison such as ``?v < 3.0`` or ``?c >= 42``."""

    operator: str  # one of <, <=, >, >=, =, !=
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class BooleanExpression:
    """Logical conjunction/disjunction of sub-expressions (``&&`` / ``||``)."""

    operator: str  # "and" | "or"
    operands: Tuple["Expression", ...]


@dataclass(frozen=True)
class Negation:
    """Logical negation (``!expr``)."""

    operand: "Expression"


@dataclass(frozen=True)
class Arithmetic:
    """Binary arithmetic: ``+``, ``-``, ``*``, ``/``."""

    operator: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class FunctionCall:
    """Builtin call such as ``regex(str(?u), "BAR")``, ``if(...)``, ``bound(?x)``."""

    name: str
    arguments: Tuple["Expression", ...]


#: Expression nodes: constants, variables, or composite nodes above.
Expression = TypingUnion[
    URI, Literal, Variable, Comparison, BooleanExpression, Negation, Arithmetic, FunctionCall
]


@dataclass(frozen=True)
class Filter:
    """A FILTER constraint applying to the enclosing group."""

    expression: Expression


@dataclass(frozen=True)
class Bind:
    """A BIND assignment ``BIND(expression AS ?variable)``."""

    expression: Expression
    variable: Variable


@dataclass
class BasicGraphPattern:
    """An ordered list of triple patterns."""

    patterns: List[TriplePattern] = field(default_factory=list)

    def variables(self) -> List[str]:
        """Distinct variable names across all patterns, in first-use order."""
        seen: List[str] = []
        for pattern in self.patterns:
            for name in pattern.variable_names():
                if name not in seen:
                    seen.append(name)
        return seen

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)


@dataclass
class Union:
    """A UNION of group graph patterns."""

    branches: List["GroupGraphPattern"] = field(default_factory=list)


@dataclass
class GroupGraphPattern:
    """A WHERE-clause group: BGP + filters + binds + unions."""

    bgp: BasicGraphPattern = field(default_factory=BasicGraphPattern)
    filters: List[Filter] = field(default_factory=list)
    binds: List[Bind] = field(default_factory=list)
    unions: List[Union] = field(default_factory=list)

    def variables(self) -> List[str]:
        """All variable names bound in the group (BGP, BINDs and UNION branches)."""
        names = self.bgp.variables()
        for bind in self.binds:
            if bind.variable.name not in names:
                names.append(bind.variable.name)
        for union in self.unions:
            for branch in union.branches:
                for name in branch.variables():
                    if name not in names:
                        names.append(name)
        return names


@dataclass
class SelectQuery:
    """A parsed SELECT query."""

    projection: Optional[List[Variable]]  # None means SELECT *
    where: GroupGraphPattern
    distinct: bool = False
    limit: Optional[int] = None

    def projected_names(self) -> List[str]:
        """Names of the projected variables (all bound variables for ``*``)."""
        if self.projection is None:
            return self.where.variables()
        return [variable.name for variable in self.projection]

    @property
    def triple_patterns(self) -> Sequence[TriplePattern]:
        """Triple patterns of the top-level BGP (convenience accessor)."""
        return self.where.bgp.patterns
