"""Quickstart: build a SuccinctEdge store and ask SPARQL queries.

This example builds a tiny sensor knowledge graph by hand, loads it into
SuccinctEdge together with a small ontology, and runs three queries: a plain
lookup, a join, and a query that needs RDFS reasoning (answered through
LiteMat identifier intervals, without materialisation).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Graph, Literal, Namespace, RDF, RDFS, SuccinctEdge, Triple

EX = Namespace("http://example.org/plant/")


def build_ontology() -> Graph:
    """A miniature concept/property hierarchy for the plant's sensors."""
    ontology = Graph()
    axioms = [
        (EX.TemperatureSensor, RDFS.subClassOf, EX.Sensor),
        (EX.PressureSensor, RDFS.subClassOf, EX.Sensor),
        (EX.Boiler, RDFS.subClassOf, EX.Equipment),
        (EX.Pump, RDFS.subClassOf, EX.Equipment),
        (EX.mountedOn, RDFS.subPropertyOf, EX.attachedTo),
    ]
    for subject, predicate, obj in axioms:
        ontology.add(Triple(subject, predicate, obj))
    return ontology


def build_data() -> Graph:
    """A handful of sensors attached to two pieces of equipment."""
    data = Graph()
    triples = [
        (EX.boiler1, RDF.type, EX.Boiler),
        (EX.pump7, RDF.type, EX.Pump),
        (EX.t1, RDF.type, EX.TemperatureSensor),
        (EX.t2, RDF.type, EX.TemperatureSensor),
        (EX.p1, RDF.type, EX.PressureSensor),
        (EX.t1, EX.mountedOn, EX.boiler1),
        (EX.t2, EX.attachedTo, EX.pump7),
        (EX.p1, EX.mountedOn, EX.boiler1),
        (EX.t1, EX.lastReading, Literal(78.4)),
        (EX.t2, EX.lastReading, Literal(21.9)),
        (EX.p1, EX.lastReading, Literal(3.6)),
    ]
    for subject, predicate, obj in triples:
        data.add(Triple(subject, predicate, obj))
    return data


def main() -> None:
    store = SuccinctEdge.from_graph(build_data(), ontology=build_ontology())
    print(f"Loaded store: {store}")
    print(f"  dictionary size : {store.dictionary_size_in_bytes()} bytes")
    print(f"  triple storage  : {store.triple_storage_size_in_bytes()} bytes")

    print("\n1. Plain lookup — readings of every sensor:")
    result = store.query(
        "SELECT ?sensor ?value WHERE { ?sensor <http://example.org/plant/lastReading> ?value }"
    )
    for row in result:
        print(f"   {row['sensor']}  ->  {row['value']}")

    print("\n2. Join — sensors mounted on the boiler with their reading:")
    result = store.query(
        """
        SELECT ?sensor ?value WHERE {
          ?sensor <http://example.org/plant/mountedOn> <http://example.org/plant/boiler1> .
          ?sensor <http://example.org/plant/lastReading> ?value .
        }
        """
    )
    for row in result:
        print(f"   {row['sensor']}  ->  {row['value']}")

    print("\n3. Reasoning — every Sensor (sub-concepts included), every attachment")
    print("   (mountedOn is a sub-property of attachedTo):")
    result = store.query(
        """
        SELECT ?sensor ?target WHERE {
          ?sensor a <http://example.org/plant/Sensor> .
          ?sensor <http://example.org/plant/attachedTo> ?target .
        }
        """,
        reasoning=True,
    )
    for row in result:
        print(f"   {row['sensor']}  attached to  {row['target']}")

    without = store.query(
        "SELECT ?sensor WHERE { ?sensor a <http://example.org/plant/Sensor> }",
        reasoning=False,
    )
    print(f"\n   (without reasoning the Sensor query returns {len(without)} rows)")

    print("\n4. Analytics — hottest reading per equipment (OPTIONAL + ORDER BY):")
    result = store.query(
        """
        SELECT ?sensor ?value ?target WHERE {
          ?sensor <http://example.org/plant/lastReading> ?value .
          OPTIONAL { ?sensor <http://example.org/plant/mountedOn> ?target }
        }
        ORDER BY DESC(?value) LIMIT 2
        """
    )
    for row in result:
        mounted = row.get("target") or "(not mounted)"
        print(f"   {row['sensor']}  ->  {row['value']}  on  {mounted}")

    print("\n5. Aggregation — sensors per equipment (GROUP BY + COUNT):")
    result = store.query(
        """
        SELECT ?target (COUNT(?sensor) AS ?sensors) WHERE {
          ?sensor <http://example.org/plant/attachedTo> ?target .
        }
        GROUP BY ?target ORDER BY DESC(?sensors)
        """,
        reasoning=True,
    )
    for row in result:
        print(f"   {row['target']}  hosts  {row['sensors']}  sensor(s)")

    print("\n6. ASK — is any reading above 75?")
    answer = store.query(
        """
        ASK { ?sensor <http://example.org/plant/lastReading> ?value .
              FILTER(?value > 75) }
        """
    )
    print(f"   {bool(answer)}")


if __name__ == "__main__":
    main()
