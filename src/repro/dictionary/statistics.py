"""Statistics used by the query optimizer.

The optimizer (paper Section 5.1) combines two kinds of statistics:

* **Dictionary-time statistics** — per-entry occurrence counts recorded when
  the dictionaries are built, aggregated over concept/property hierarchies
  (``hierarchical_occurrences``), wrapped here into one façade object.
* **Run-time statistics** — counts computed directly on the SDS structures
  (e.g. Algorithm 2: the number of triples holding a given predicate, derived
  from two ``select`` calls on the PS bitmap).  Those live on the triple
  store; this façade exposes a uniform interface over both.
"""

from __future__ import annotations

from typing import Optional

from repro.dictionary.term_dictionary import (
    ConceptDictionary,
    InstanceDictionary,
    PropertyDictionary,
)
from repro.rdf.terms import Term, URI


class DictionaryStatistics:
    """Cardinality estimates backed by the dictionaries' occurrence counters."""

    def __init__(
        self,
        concepts: ConceptDictionary,
        properties: PropertyDictionary,
        instances: InstanceDictionary,
    ) -> None:
        self.concepts = concepts
        self.properties = properties
        self.instances = instances

    # ------------------------------------------------------------------ #
    # cardinality estimates
    # ------------------------------------------------------------------ #

    def concept_cardinality(self, concept: URI, with_hierarchy: bool = True) -> int:
        """Estimated number of ``rdf:type`` triples for ``concept``.

        With ``with_hierarchy`` (the paper's approach) the estimate sums the
        counts over the concept's whole sub-hierarchy.
        """
        if concept not in self.concepts:
            return 0
        if with_hierarchy:
            return self.concepts.hierarchical_occurrences(concept)
        return self.concepts.occurrences_of_term(concept)

    def property_cardinality(self, prop: URI, with_hierarchy: bool = True) -> int:
        """Estimated number of triples whose predicate is ``prop``."""
        if prop not in self.properties:
            return 0
        if with_hierarchy:
            return self.properties.hierarchical_occurrences(prop)
        return self.properties.occurrences_of_term(prop)

    def instance_cardinality(self, term: Term) -> int:
        """Estimated number of triples mentioning the individual ``term``."""
        return self.instances.occurrences_of_term(term)

    def triple_pattern_cardinality(
        self,
        subject: Optional[Term],
        predicate: Optional[URI],
        obj: Optional[Term],
        is_rdf_type: bool,
    ) -> int:
        """Estimate for a triple pattern where ``None`` marks a variable slot.

        The estimate is the minimum over the selectivity of every constant
        slot — a standard independence-style bound that only uses statistics
        the dictionaries actually store.
        """
        estimates = []
        if is_rdf_type and isinstance(obj, URI):
            estimates.append(self.concept_cardinality(obj))
        elif obj is not None:
            estimates.append(self.instance_cardinality(obj))
        if predicate is not None and not is_rdf_type:
            estimates.append(self.property_cardinality(predicate))
        if subject is not None:
            estimates.append(self.instance_cardinality(subject))
        if not estimates:
            # Fully unbound pattern: fall back to the total property mass.
            total = sum(self.properties.occurrences(i) for i in self.properties.identifiers())
            total += sum(self.concepts.occurrences(i) for i in self.concepts.identifiers())
            return total
        return min(estimates)

    def __repr__(self) -> str:
        return (
            f"DictionaryStatistics(concepts={len(self.concepts)}, "
            f"properties={len(self.properties)}, instances={len(self.instances)})"
        )
