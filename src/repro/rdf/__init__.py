"""RDF data-model substrate.

A from-scratch implementation of the parts of RDF 1.1 that SuccinctEdge
needs: terms (URIs, blank nodes, typed literals), triples, an in-memory
:class:`~repro.rdf.graph.Graph`, N-Triples serialisation, and a Turtle-subset
parser sufficient for the ontologies and datasets of the paper's evaluation
(LUBM's univ-bench, SOSA, QUDT extracts, and the generated instance data).
"""

from repro.rdf.terms import BlankNode, Literal, Term, Triple, URI
from repro.rdf.namespaces import (
    LUBM,
    OWL,
    QUDT,
    QUDT_UNIT,
    RDF,
    RDFS,
    SOSA,
    XSD,
    Namespace,
)
from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.turtle import parse_turtle

__all__ = [
    "BlankNode",
    "Graph",
    "LUBM",
    "Literal",
    "Namespace",
    "OWL",
    "QUDT",
    "QUDT_UNIT",
    "RDF",
    "RDFS",
    "SOSA",
    "Term",
    "Triple",
    "URI",
    "XSD",
    "parse_ntriples",
    "parse_turtle",
    "serialize_ntriples",
]
