"""N-Triples parsing and serialisation.

N-Triples is the line-based exchange format used to persist the generated
datasets (the paper's evaluation reads datasets from files before measuring
back-end construction time, Figure 8).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, TextIO, Union

from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, Literal, Term, Triple, URI


class NTriplesParseError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""


_IRI = r"<([^<>\"\s]*)>"
_BNODE = r"_:([A-Za-z0-9_.\-]+)"
_LITERAL = r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^<>\s]*)>|@([A-Za-z0-9\-]+))?'
_SUBJECT = re.compile(rf"\s*(?:{_IRI}|{_BNODE})")
_PREDICATE = re.compile(rf"\s*{_IRI}")
_OBJECT = re.compile(rf"\s*(?:{_IRI}|{_BNODE}|{_LITERAL})")
_END = re.compile(r"\s*\.\s*(#.*)?$")

_ESCAPES = {"\\n": "\n", "\\r": "\r", "\\t": "\t", '\\"': '"', "\\\\": "\\"}


def _unescape(text: str) -> str:
    result = text
    for escaped, raw in _ESCAPES.items():
        result = result.replace(escaped, raw)
    return result


def parse_ntriples_line(line: str, line_number: int = 0) -> Triple:
    """Parse a single N-Triples statement."""
    match = _SUBJECT.match(line)
    if not match:
        raise NTriplesParseError(f"line {line_number}: cannot parse subject in {line!r}")
    subject: Union[URI, BlankNode]
    subject = URI(match.group(1)) if match.group(1) is not None else BlankNode(match.group(2))
    position = match.end()

    match = _PREDICATE.match(line, position)
    if not match:
        raise NTriplesParseError(f"line {line_number}: cannot parse predicate in {line!r}")
    predicate = URI(match.group(1))
    position = match.end()

    match = _OBJECT.match(line, position)
    if not match:
        raise NTriplesParseError(f"line {line_number}: cannot parse object in {line!r}")
    obj: Term
    if match.group(1) is not None:
        obj = URI(match.group(1))
    elif match.group(2) is not None:
        obj = BlankNode(match.group(2))
    else:
        lexical = _unescape(match.group(3))
        datatype = match.group(4)
        language = match.group(5)
        obj = Literal(lexical, datatype=datatype, language=language)
    position = match.end()

    if not _END.match(line, position):
        raise NTriplesParseError(f"line {line_number}: missing terminating '.' in {line!r}")
    return Triple(subject, predicate, obj)


def parse_ntriples(source: Union[str, TextIO, Iterable[str]]) -> Graph:
    """Parse an N-Triples document (string, file object or iterable of lines)."""
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    graph = Graph()
    for line_number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        graph.add(parse_ntriples_line(line, line_number))
    return graph


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialise triples into an N-Triples document."""
    return "".join(triple.n3() + "\n" for triple in triples)


def write_ntriples(triples: Iterable[Triple], path: str) -> int:
    """Write triples to ``path``; return the number of statements written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(triple.n3() + "\n")
            count += 1
    return count


def read_ntriples(path: str) -> Graph:
    """Read an N-Triples file into a :class:`~repro.rdf.graph.Graph`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_ntriples(handle)


def iter_ntriples(path: str) -> Iterator[Triple]:
    """Stream triples from an N-Triples file without building a graph."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            yield parse_ntriples_line(line, line_number)
