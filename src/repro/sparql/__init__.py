"""SPARQL substrate (subset).

SuccinctEdge answers SELECT queries whose WHERE clause is a basic graph
pattern optionally extended with FILTER, BIND and UNION (the latter is what
the baselines need for reasoning by query rewriting).  This package provides:

* :mod:`repro.sparql.ast` — the query abstract syntax tree,
* :mod:`repro.sparql.parser` — a recursive-descent parser for the subset,
* :mod:`repro.sparql.expressions` — FILTER/BIND expression evaluation,
* :mod:`repro.sparql.bindings` — solution mappings (variable bindings).
"""

from repro.sparql.ast import (
    BasicGraphPattern,
    Bind,
    Filter,
    GroupGraphPattern,
    SelectQuery,
    TriplePattern,
    Union,
    Variable,
)
from repro.sparql.bindings import Binding, ResultSet
from repro.sparql.parser import SparqlParseError, parse_query

__all__ = [
    "BasicGraphPattern",
    "Bind",
    "Binding",
    "Filter",
    "GroupGraphPattern",
    "ResultSet",
    "SelectQuery",
    "SparqlParseError",
    "TriplePattern",
    "Union",
    "Variable",
    "parse_query",
]
