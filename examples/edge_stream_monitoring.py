"""Edge deployment: continuous queries over a stream of measurement graphs.

Simulates the deployment scenario of the paper's Section 4: a SuccinctEdge
instance running on an edge device (Raspberry Pi class) receives a flow of
measurement graph instances from the building's water-distribution sensors,
evaluates the registered anomaly rules once per instance, and only transmits
alerts to the central administration server.  The example also compares the
energy of this edge strategy against shipping every raw graph to the cloud.

Run with::

    python examples/edge_stream_monitoring.py [instances]
"""

from __future__ import annotations

import sys

from repro.edge import (
    AlertSink,
    AnomalyRule,
    EdgeDevice,
    GraphStreamProcessor,
    RASPBERRY_PI_3B_PLUS,
)
from repro.rdf.ntriples import serialize_ntriples
from repro.workloads.engie import (
    anomaly_detection_query,
    engie_ontology,
    water_distribution_graph,
)

CHEMISTRY_RULE_QUERY = """
PREFIX sosa: <http://www.w3.org/ns/sosa/>
PREFIX qudt: <http://qudt.org/schema/qudt/>
SELECT ?x ?s ?ts ?v WHERE {
  ?x a sosa:Platform ; sosa:hosts ?s .
  ?s sosa:observes ?o ; a sosa:Sensor .
  ?o sosa:hasResult ?y ; a sosa:Observation ; sosa:resultTime ?ts .
  ?y a sosa:Result ; qudt:numericValue ?v ; qudt:unit ?u .
  ?u a qudt:ScienceUnit .
  FILTER (?v > 0.6)
}
"""


def main() -> None:
    instance_count = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    device = EdgeDevice(RASPBERRY_PI_3B_PLUS)
    sink = AlertSink(callback=lambda alert: print(f"    ALERT {alert.describe()}"))
    rules = [
        AnomalyRule(
            name="pressure-out-of-range",
            query=anomaly_detection_query(),
            severity="critical",
            requires_reasoning=True,
            description="Pressure outside the 3.00-4.50 bar operating range.",
        ),
        AnomalyRule(
            name="chemistry-concentration-high",
            query=CHEMISTRY_RULE_QUERY,
            severity="warning",
            requires_reasoning=True,
            description="Chemical concentration above 0.6 mg/L.",
        ),
    ]
    processor = GraphStreamProcessor(ontology=engie_ontology(), rules=rules, sink=sink, device=device)

    print(f"Edge device: {device}")
    print(f"Registered rules: {[rule.name for rule in rules]}\n")

    raw_bytes_total = 0
    for instance_index in range(instance_count):
        graph = water_distribution_graph(
            observations_per_sensor=8, stations=2, anomaly_rate=0.2, seed=100 + instance_index
        )
        raw_bytes_total += len(serialize_ntriples(graph).encode("utf-8"))
        print(f"Instance {instance_index}: {len(graph)} triples")
        alerts = processor.process_instance(graph)
        if not alerts:
            print("    no anomaly")

    statistics = processor.statistics
    print("\nStream statistics")
    print(f"  instances processed : {statistics.instances_processed}")
    print(f"  triples processed   : {statistics.triples_processed}")
    print(f"  alerts raised       : {statistics.alerts_raised}")
    print(f"  mean latency        : {statistics.mean_processing_ms:.1f} ms/instance (this machine)")
    print(f"  projected on device : {device.scale_latency_ms(statistics.mean_processing_ms):.1f} ms/instance")

    comparison = device.edge_vs_cloud_energy(
        processing_ms=statistics.total_processing_ms,
        alert_bytes=sink.estimated_payload_bytes(),
        raw_graph_bytes=raw_bytes_total,
    )
    print("\nEnergy comparison (whole stream)")
    print(f"  edge processing + alert transmission : {comparison['edge_joules']:.2f} J")
    print(f"  shipping every raw graph to the cloud: {comparison['cloud_joules']:.2f} J")
    print(f"  edge strategy wins: {comparison['edge_wins']}")


if __name__ == "__main__":
    main()
