"""Tests for the LiteMat semantic-aware encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ontology.litemat import EncodedEntity, LiteMatEncoder, LiteMatEncoding
from repro.ontology.schema import OntologySchema
from repro.rdf.namespaces import Namespace, OWL_THING

EX = Namespace("http://example.org/")


def figure2_schema() -> OntologySchema:
    """The example of Figure 2: A ⊑ Thing, B ⊑ Thing, C ⊑ B, D ⊑ B."""
    schema = OntologySchema()
    schema.add_concept(EX.A)
    schema.add_concept(EX.B)
    schema.add_subclass(EX.C, EX.B)
    schema.add_subclass(EX.D, EX.B)
    return schema


class TestFigure2Example:
    def test_identifiers_match_the_paper(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts()
        assert encoding.encode(OWL_THING) == 16
        assert encoding.encode(EX.A) == 20
        assert encoding.encode(EX.B) == 24
        assert encoding.encode(EX.C) == 25
        assert encoding.encode(EX.D) == 26
        assert encoding.total_length == 5

    def test_metadata_local_lengths(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts()
        assert encoding.entry(OWL_THING).local_length == 1
        assert encoding.entry(EX.B).local_length == 3
        assert encoding.entry(EX.C).local_length == 5

    def test_intervals_cover_descendants_only(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts()
        low, high = encoding.interval(EX.B)
        assert low <= encoding.encode(EX.C) < high
        assert low <= encoding.encode(EX.D) < high
        assert not (low <= encoding.encode(EX.A) < high)
        thing_low, thing_high = encoding.interval(OWL_THING)
        for concept in (EX.A, EX.B, EX.C, EX.D):
            assert thing_low <= encoding.encode(concept) < thing_high

    def test_is_descendant(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts()
        assert encoding.is_descendant(EX.C, EX.B)
        assert encoding.is_descendant(EX.B, EX.B)
        assert encoding.is_descendant(EX.C, OWL_THING)
        assert not encoding.is_descendant(EX.B, EX.C)
        assert not encoding.is_descendant(EX.A, EX.B)


class TestEncodingBasics:
    def test_decode_round_trip(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts()
        for term in encoding.terms():
            assert encoding.decode(encoding.encode(term)) == term

    def test_try_encode_and_try_decode(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts()
        assert encoding.try_encode(EX.Unknown) is None
        assert encoding.try_decode(9999) is None
        assert encoding.try_encode(EX.A) == 20

    def test_unknown_term_raises(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts()
        with pytest.raises(KeyError):
            encoding.encode(EX.Unknown)
        with pytest.raises(KeyError):
            encoding.decode(12345)

    def test_identifiers_never_zero(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts()
        assert all(identifier > 0 for identifier in encoding.identifiers().values())

    def test_duplicate_identifier_rejected(self):
        entries = {
            EX.A: EncodedEntity(identifier=4, local_length=2, total_length=3),
            EX.B: EncodedEntity(identifier=4, local_length=3, total_length=3),
        }
        with pytest.raises(ValueError):
            LiteMatEncoding(entries, total_length=3)

    def test_extra_concepts_attached_under_root(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts(extra_concepts=[EX.Z])
        assert EX.Z in encoding
        assert encoding.is_descendant(EX.Z, OWL_THING)
        assert not encoding.is_descendant(EX.Z, EX.B)

    def test_property_encoding_has_no_explicit_root(self):
        schema = OntologySchema()
        schema.add_subproperty(EX.headOf, EX.worksFor)
        schema.add_subproperty(EX.worksFor, EX.memberOf)
        encoding = LiteMatEncoder(schema).encode_properties(extra_properties=[EX.name])
        assert encoding.root is None
        assert encoding.is_descendant(EX.headOf, EX.memberOf)
        assert not encoding.is_descendant(EX.name, EX.memberOf)

    def test_interval_of_leaf_is_single_slot_or_more(self):
        encoding = LiteMatEncoder(figure2_schema()).encode_concepts()
        low, high = encoding.interval(EX.C)
        assert high > low
        assert encoding.encode(EX.C) == low

    def test_repr(self):
        assert "LiteMatEncoding" in repr(LiteMatEncoder(figure2_schema()).encode_concepts())


class TestDeepHierarchies:
    def test_chain_hierarchy(self):
        schema = OntologySchema()
        previous = None
        concepts = [EX[f"Level{i}"] for i in range(12)]
        for concept in concepts:
            if previous is None:
                schema.add_concept(concept)
            else:
                schema.add_subclass(concept, previous)
            previous = concept
        encoding = LiteMatEncoder(schema).encode_concepts()
        for shallower_index in range(len(concepts)):
            for deeper_index in range(shallower_index, len(concepts)):
                assert encoding.is_descendant(concepts[deeper_index], concepts[shallower_index])

    def test_wide_hierarchy(self):
        schema = OntologySchema()
        children = [EX[f"Child{i}"] for i in range(40)]
        for child in children:
            schema.add_subclass(child, EX.Parent)
        encoding = LiteMatEncoder(schema).encode_concepts()
        identifiers = [encoding.encode(child) for child in children]
        assert len(set(identifiers)) == len(children)
        low, high = encoding.interval(EX.Parent)
        assert all(low <= identifier < high for identifier in identifiers)


# --------------------------------------------------------------------------- #
# property-based test: on random forests, interval containment == descendancy
# --------------------------------------------------------------------------- #


@st.composite
def random_forest(draw):
    size = draw(st.integers(min_value=1, max_value=40))
    parents = []
    for index in range(size):
        if index == 0:
            parents.append(None)
        else:
            parents.append(draw(st.one_of(st.none(), st.integers(min_value=0, max_value=index - 1))))
    return parents


@settings(max_examples=60, deadline=None)
@given(parents=random_forest())
def test_property_interval_containment_equals_descendancy(parents):
    schema = OntologySchema()
    concepts = [EX[f"N{i}"] for i in range(len(parents))]
    for index, parent in enumerate(parents):
        if parent is None:
            schema.add_concept(concepts[index])
        else:
            schema.add_subclass(concepts[index], concepts[parent])
    encoding = LiteMatEncoder(schema).encode_concepts()

    def is_ancestor(candidate_index: int, ancestor_index: int) -> bool:
        node = candidate_index
        while node is not None:
            if node == ancestor_index:
                return True
            node = parents[node]
        return False

    for candidate_index in range(len(parents)):
        for ancestor_index in range(len(parents)):
            expected = is_ancestor(candidate_index, ancestor_index)
            actual = encoding.is_descendant(concepts[candidate_index], concepts[ancestor_index])
            assert actual == expected, (candidate_index, ancestor_index)
