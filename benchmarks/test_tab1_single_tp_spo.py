"""Table 1 — data retrieval for a single ``(S, P, ?o)`` triple pattern.

The answer-set sizes (4 / 66 / 129 / 257 / 513) are guaranteed by the LUBM
landmark entities, so the columns match the paper's table exactly.  Times are
hot runs (best of 3), split into measured CPU time and the simulated
environment cost of the baseline analogues.
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.baselines.registry import SYSTEM_ORDER
from repro.bench.harness import format_table, query_latency_row
from repro.workloads.lubm import TABLE1_CARDINALITIES


def test_tab1_single_tp_spo(benchmark, context, loaded_systems, results_dir):
    """Regenerate Table 1 (S,P,?o latency vs answer-set size)."""
    queries = [context.catalog.by_identifier()[f"S{i}"] for i in range(1, 6)]
    columns = [str(size) for size in TABLE1_CARDINALITIES]
    rows = {}
    for system_name in SYSTEM_ORDER:
        system = loaded_systems[system_name]
        cells = []
        for query in queries:
            measurement = query_latency_row(system, query, reasoning=False)
            assert measurement is not None
            assert len(measurement.result) == query.expected_cardinality
            cells.append(measurement.total_ms)
        rows[system_name] = cells
    table = format_table(
        "Table 1: single S,P,?o triple pattern (answer-set size per column)",
        columns,
        rows,
        unit="ms, measured + simulated",
    )
    record_table(results_dir, "tab1_single_tp_spo", table)

    # The benchmarked operation: SuccinctEdge on the most selective query.
    succinct = loaded_systems["SuccinctEdge"]
    benchmark.pedantic(lambda: succinct.query(queries[0].sparql), rounds=3, iterations=1)

    # Shape check: SuccinctEdge beats the disk-based stores on selective queries.
    assert rows["SuccinctEdge"][0] < rows["RDF4Led"][0]
    assert rows["SuccinctEdge"][0] < rows["Jena_TDB"][0]
