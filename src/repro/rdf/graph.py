"""In-memory RDF graph.

:class:`Graph` is the neutral exchange format between the parsers, the
workload generators, the SuccinctEdge store builder and the baseline stores.
It keeps triples in insertion order (deduplicated) and offers simple pattern
matching used by tests as a ground-truth oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import BlankNode, Literal, Term, Triple, URI

_SubjectType = Union[URI, BlankNode]


class Graph:
    """A mutable, set-like collection of RDF triples.

    The class intentionally stays simple: SuccinctEdge and the baselines build
    their own indexes; :class:`Graph` is the common loading format and the
    naive oracle used to validate query answers in tests.
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: List[Triple] = []
        self._seen: Set[Triple] = set()
        for triple in triples:
            self.add(triple)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Triple) -> bool:
        """Add ``triple``; return ``True`` when it was not already present."""
        if triple in self._seen:
            return False
        self._seen.add(triple)
        self._triples.append(triple)
        return True

    def add_triple(self, subject: _SubjectType, predicate: URI, obj: Term) -> bool:
        """Convenience wrapper building the :class:`Triple` in place."""
        return self.add(Triple(subject, predicate, obj))

    def update(self, triples: Iterable[Triple]) -> int:
        """Add every triple of ``triples``; return the number actually added."""
        return sum(1 for triple in triples if self.add(triple))

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._seen

    def __repr__(self) -> str:
        return f"Graph({len(self._triples)} triples)"

    def triples(
        self,
        subject: Optional[_SubjectType] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the given pattern (``None`` = wildcard).

        This linear scan is the ground-truth oracle; the stores under test
        implement the same contract with their own indexes.
        """
        for triple in self._triples:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def subjects(self, predicate: Optional[URI] = None, obj: Optional[Term] = None) -> Iterator[_SubjectType]:
        """Yield subjects of triples matching ``(?, predicate, obj)``."""
        for triple in self.triples(None, predicate, obj):
            yield triple.subject

    def objects(self, subject: Optional[_SubjectType] = None, predicate: Optional[URI] = None) -> Iterator[Term]:
        """Yield objects of triples matching ``(subject, predicate, ?)``."""
        for triple in self.triples(subject, predicate, None):
            yield triple.object

    def predicates(self) -> List[URI]:
        """Distinct predicates, in first-seen order."""
        seen: Dict[URI, None] = {}
        for triple in self._triples:
            seen.setdefault(triple.predicate, None)
        return list(seen)

    def types_of(self, subject: _SubjectType) -> List[Term]:
        """All ``rdf:type`` objects of ``subject``."""
        return [t.object for t in self.triples(subject, RDF_TYPE, None)]

    def instances_of(self, concept: URI) -> List[_SubjectType]:
        """All subjects explicitly typed with ``concept``."""
        return [t.subject for t in self.triples(None, RDF_TYPE, concept)]

    # ------------------------------------------------------------------ #
    # statistics / slicing used by the evaluation datasets
    # ------------------------------------------------------------------ #

    def term_counts(self) -> Tuple[int, int, int]:
        """Return ``(distinct subjects, distinct predicates, distinct objects)``."""
        subjects = {t.subject for t in self._triples}
        predicates = {t.predicate for t in self._triples}
        objects = {t.object for t in self._triples}
        return len(subjects), len(predicates), len(objects)

    def head(self, count: int) -> "Graph":
        """A new graph holding the first ``count`` triples (dataset slicing).

        The paper derives its 1K/5K/10K/25K/50K datasets by truncating the
        LUBM(1) triple set; this helper reproduces that slicing.
        """
        return Graph(self._triples[:count])

    def copy(self) -> "Graph":
        """A shallow copy of the graph."""
        return Graph(self._triples)

    def literals(self) -> List[Literal]:
        """All literal objects, in insertion order (with duplicates removed)."""
        seen: Dict[Literal, None] = {}
        for triple in self._triples:
            if isinstance(triple.object, Literal):
                seen.setdefault(triple.object, None)
        return list(seen)
