"""Red-black tree ordered map.

SuccinctEdge stores ``rdf:type`` triples in a dedicated *RDFType store* backed
by a red-black tree (paper Section 4): insertion during database construction
stays O(log n) and lookups by subject or by concept remain logarithmic.  This
module provides a classic left-leaning-free, textbook red-black tree with an
ordered-map interface plus range iteration, which the RDFType store uses for
both its SO and OS access paths.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

_RED = True
_BLACK = False


class _RBNode:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: Any, value: Any, color: bool, parent: Optional["_RBNode"]) -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left: Optional["_RBNode"] = None
        self.right: Optional["_RBNode"] = None
        self.parent = parent


class RedBlackTree:
    """Ordered map with O(log n) insert, lookup and in-order iteration.

    Keys must be mutually comparable (the RDFType store uses integer tuples).
    Duplicate keys overwrite the stored value, matching ``dict`` semantics.
    """

    def __init__(self) -> None:
        self._root: Optional[_RBNode] = None
        self._size = 0

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    def __iter__(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def __getitem__(self, key: Any) -> Any:
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        return node.value

    def __setitem__(self, key: Any, value: Any) -> None:
        self.insert(key, value)

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        node = self._find(key)
        return default if node is None else node.value

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def _find(self, key: Any) -> Optional[_RBNode]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs in ascending key order."""
        stack: List[_RBNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        """Yield keys in ascending order."""
        for key, _value in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        """Yield values in ascending key order."""
        for _key, value in self.items():
            yield value

    def range_items(self, low: Any, high: Any) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``low <= key < high`` in order.

        This is the access path the RDFType store uses to enumerate every
        subject of a given concept (keys are ``(concept_id, subject_id)``
        tuples, so a concept corresponds to a contiguous key range).
        """
        yield from self._range(self._root, low, high)

    def _range(self, node: Optional[_RBNode], low: Any, high: Any) -> Iterator[Tuple[Any, Any]]:
        if node is None:
            return
        if low < node.key:
            yield from self._range(node.left, low, high)
        if low <= node.key and node.key < high:
            yield node.key, node.value
        if node.key < high:
            yield from self._range(node.right, low, high)

    def min_key(self) -> Any:
        """Smallest key in the tree; raises :class:`KeyError` when empty."""
        if self._root is None:
            raise KeyError("min_key() on empty tree")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> Any:
        """Largest key in the tree; raises :class:`KeyError` when empty."""
        if self._root is None:
            raise KeyError("max_key() on empty tree")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key

    # ------------------------------------------------------------------ #
    # insertion (standard red-black fix-up)
    # ------------------------------------------------------------------ #

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` with ``value``; overwrites an existing key."""
        parent = None
        node = self._root
        while node is not None:
            parent = node
            if key == node.key:
                node.value = value
                return
            node = node.left if key < node.key else node.right
        new_node = _RBNode(key, value, _RED, parent)
        if parent is None:
            self._root = new_node
        elif key < parent.key:
            parent.left = new_node
        else:
            parent.right = new_node
        self._size += 1
        self._fix_insert(new_node)

    def _fix_insert(self, node: _RBNode) -> None:
        while node.parent is not None and node.parent.color == _RED:
            parent = node.parent
            grandparent = parent.parent
            if grandparent is None:
                break
            if parent is grandparent.left:
                uncle = grandparent.right
                if uncle is not None and uncle.color == _RED:
                    parent.color = _BLACK
                    uncle.color = _BLACK
                    grandparent.color = _RED
                    node = grandparent
                else:
                    if node is parent.right:
                        node = parent
                        self._rotate_left(node)
                    node.parent.color = _BLACK  # type: ignore[union-attr]
                    grandparent.color = _RED
                    self._rotate_right(grandparent)
            else:
                uncle = grandparent.left
                if uncle is not None and uncle.color == _RED:
                    parent.color = _BLACK
                    uncle.color = _BLACK
                    grandparent.color = _RED
                    node = grandparent
                else:
                    if node is parent.left:
                        node = parent
                        self._rotate_right(node)
                    node.parent.color = _BLACK  # type: ignore[union-attr]
                    grandparent.color = _RED
                    self._rotate_left(grandparent)
        assert self._root is not None
        self._root.color = _BLACK

    def _rotate_left(self, node: _RBNode) -> None:
        pivot = node.right
        assert pivot is not None
        node.right = pivot.left
        if pivot.left is not None:
            pivot.left.parent = node
        pivot.parent = node.parent
        if node.parent is None:
            self._root = pivot
        elif node is node.parent.left:
            node.parent.left = pivot
        else:
            node.parent.right = pivot
        pivot.left = node
        node.parent = pivot

    def _rotate_right(self, node: _RBNode) -> None:
        pivot = node.left
        assert pivot is not None
        node.left = pivot.right
        if pivot.right is not None:
            pivot.right.parent = node
        pivot.parent = node.parent
        if node.parent is None:
            self._root = pivot
        elif node is node.parent.right:
            node.parent.right = pivot
        else:
            node.parent.left = pivot
        pivot.right = node
        node.parent = pivot

    # ------------------------------------------------------------------ #
    # invariant checking (used by the property-based tests)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` if any red-black invariant is broken."""
        if self._root is None:
            return
        if self._root.color != _BLACK:
            raise AssertionError("root must be black")
        self._check_node(self._root)

    def _check_node(self, node: Optional[_RBNode]) -> int:
        if node is None:
            return 1
        if node.color == _RED:
            for child in (node.left, node.right):
                if child is not None and child.color == _RED:
                    raise AssertionError("red node has a red child")
        left_black = self._check_node(node.left)
        right_black = self._check_node(node.right)
        if left_black != right_black:
            raise AssertionError("black-height mismatch")
        if node.left is not None and not node.left.key < node.key:
            raise AssertionError("BST order violated on the left")
        if node.right is not None and not node.key < node.right.key:
            raise AssertionError("BST order violated on the right")
        return left_black + (1 if node.color == _BLACK else 0)

    def size_in_bytes(self) -> int:
        """Rough storage footprint estimate (pointers + keys)."""
        # 5 machine words per node (key, value, colour, two children).
        return self._size * 5 * 8


class FrozenPairTree:
    """Immutable ordered map over integer pairs, backed by a flat word buffer.

    The persistence-v4 stand-in for a :class:`RedBlackTree` whose keys are
    ``(a, b)`` integer tuples and whose values are all ``None`` (the RDFType
    store's only use).  Keys live interleaved in one sorted 64-bit word
    buffer — ``words[2 * i]``/``words[2 * i + 1]`` are the ``i``-th key — so a
    mapped store image serves lookups by binary search directly out of the
    page cache, with no nodes ever materialised.

    The read API mirrors :class:`RedBlackTree` (``in``, :meth:`items`,
    :meth:`range_items` accept the same tuple bounds, including sentinels such
    as ``(concept_id, -1)``).  :meth:`insert` raises — live writes against a
    mapped store go through the delta overlay, never through the mapped base.
    """

    __slots__ = ("_words", "_count")

    def __init__(self, words, count: int) -> None:
        self._words = words
        self._count = count

    @classmethod
    def from_pairs(cls, pairs: "List[Tuple[int, int]]") -> "FrozenPairTree":
        """Pack already-sorted unique ``(a, b)`` pairs into a fresh buffer."""
        from array import array

        words = array("Q")
        for a, b in pairs:
            words.append(a)
            words.append(b)
        return cls(words, len(pairs))

    def _key(self, index: int) -> Tuple[int, int]:
        words = self._words
        return words[2 * index], words[2 * index + 1]

    def _lower_bound(self, bound: Any) -> int:
        """Index of the first key ``>= bound`` (bounds may use sentinels)."""
        lo, hi = 0, self._count
        while lo < hi:
            mid = (lo + hi) // 2
            if self._key(mid) < bound:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: Any) -> bool:
        index = self._lower_bound(key)
        return index < self._count and self._key(index) == tuple(key)

    def __iter__(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def __getitem__(self, key: Any) -> Any:
        if key not in self:
            raise KeyError(key)
        return None

    def get(self, key: Any, default: Any = None) -> Any:
        """Return ``None`` for stored keys (pair values are always ``None``)."""
        return None if key in self else default

    def items(self) -> Iterator[Tuple[Tuple[int, int], None]]:
        """Yield ``(key, None)`` pairs in ascending key order."""
        for index in range(self._count):
            yield self._key(index), None

    def keys(self) -> Iterator[Tuple[int, int]]:
        """Yield keys in ascending order."""
        for key, _value in self.items():
            yield key

    def range_items(self, low: Any, high: Any) -> Iterator[Tuple[Tuple[int, int], None]]:
        """Yield ``(key, None)`` pairs with ``low <= key < high`` in order."""
        index = self._lower_bound(low)
        count = self._count
        while index < count:
            key = self._key(index)
            if not key < high:
                return
            yield key, None
            index += 1

    def min_key(self) -> Tuple[int, int]:
        """Smallest key; raises :class:`KeyError` when empty."""
        if not self._count:
            raise KeyError("min_key() on empty tree")
        return self._key(0)

    def max_key(self) -> Tuple[int, int]:
        """Largest key; raises :class:`KeyError` when empty."""
        if not self._count:
            raise KeyError("max_key() on empty tree")
        return self._key(self._count - 1)

    def insert(self, key: Any, value: Any = None) -> None:
        """Frozen trees are read-only; writes belong in the delta overlay."""
        raise TypeError(
            "FrozenPairTree is immutable (it may alias a mapped store image); "
            "route writes through UpdatableSuccinctEdge instead"
        )

    def size_in_bytes(self) -> int:
        """Exact storage footprint of the packed key buffer."""
        return self._count * 2 * 8
