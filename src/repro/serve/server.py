"""SPARQL over HTTP: a concurrent query server plus a tiny client.

:class:`QueryServer` wraps Python's :class:`~http.server.ThreadingHTTPServer`
(one handler thread per connection, daemonized) and routes every request
through one shared :class:`~repro.serve.service.QueryService` — which is
where the *bounded* worker pool lives: the service's ``worker_slots``
semaphore caps concurrent query execution and its ``max_pending`` bound
turns overload into fast ``503`` rejections instead of unbounded queueing.

Endpoints
---------
``GET/POST /sparql``
    ``query`` parameter (URL-encoded on GET, form- or raw-body on POST),
    optional ``reasoning=0|1`` and ``timeout`` (seconds).  Responds with a
    SPARQL-JSON-style document; serving metadata travels in the
    ``X-Cache`` / ``X-Epoch`` / ``X-Elapsed-Ms`` headers.  With
    ``explain=1`` the query is *planned but not executed*: the response is
    ``{"plan": ..., "planner": ..., "epoch": ...}`` — the exact plan IR the
    engine would interpret, served from the epoch-keyed plan cache.
``GET /healthz``
    Liveness: store triple count and snapshot epoch.
``GET /metrics``
    The :class:`~repro.serve.metrics.ServingMetrics` snapshot.
``GET /stats``
    Full service stats (metrics + cache + store + admission settings).

An optional :class:`~repro.edge.device.SimulatedNetwork` models response
transmission over a constrained edge uplink (see ``docs/performance.md`` for
why that is the quantity a worker pool overlaps on a single-core device).

Status codes: ``400`` parse error · ``503`` admission rejection ·
``504`` query deadline exceeded · ``500`` internal error.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.edge.device import SimulatedNetwork
from repro.serve.service import QueryOutcome, QueryRejected, QueryService, QueryTimeout
from repro.sparql.bindings import AskResult
from repro.sparql.parser import SparqlParseError


def _result_document(outcome: QueryOutcome) -> dict:
    """A SPARQL-JSON-style document for one outcome (values stringified)."""
    result = outcome.result
    if isinstance(result, AskResult):
        return {"head": {}, "boolean": result.boolean}
    return {
        "head": {"vars": list(result.variables)},
        "results": {
            "rows": [
                [None if value is None else str(value) for value in row]
                for row in result.to_tuples()
            ]
        },
    }


class _SparqlRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the shared QueryService."""

    server_version = "SuccinctEdgeServe/1.0"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass attaches the service + network.
    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (metrics cover accounting)."""

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        url = urlsplit(self.path)
        if self._serve_custom(url, None):
            return
        if url.path == "/sparql":
            params = parse_qs(url.query)
            self._serve_query(params)
        elif url.path == "/healthz":
            store = self.service.store
            self._send_json(
                200,
                {
                    "status": "ok",
                    "triples": store.triple_count,
                    "epoch": list(store.snapshot_epoch),
                },
            )
        elif url.path == "/metrics":
            self._send_json(200, self.service.metrics.snapshot())
        elif url.path == "/stats":
            self._send_json(200, self.service.stats())
        else:
            self._send_json(404, {"error": f"unknown path {url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        url = urlsplit(self.path)
        length = int(self.headers.get("Content-Length", "0") or "0")
        raw = self.rfile.read(length) if length else b""
        if self._serve_custom(url, raw):
            return
        if url.path != "/sparql":
            self._send_json(404, {"error": f"unknown path {url.path!r}"})
            return
        body = raw.decode("utf-8") if raw else ""
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        params = parse_qs(url.query)
        if content_type == "application/x-www-form-urlencoded":
            params.update(parse_qs(body))
        elif body:
            params["query"] = [body]
        self._serve_query(params)

    def _serve_custom(self, url, body: Optional[bytes]) -> bool:
        """Dispatch to a server-attached extension route, if one matches.

        Extension routes (``QueryServer(routes=...)``) let co-located
        subsystems — the cluster replication endpoints of
        :mod:`repro.serve.cluster` — ride the same HTTP front door.  A
        handler receives ``(params, body)`` and returns
        ``(status, document[, headers])`` where the document is a JSON-able
        dict or raw ``bytes`` (served as ``application/octet-stream`` —
        the image-shipping path).  Returns ``False`` when no route matches,
        letting the built-in endpoints answer.
        """
        routes = getattr(self.server, "routes", None)
        handler = routes.get(url.path) if routes else None
        if handler is None:
            return False
        try:
            reply = handler(parse_qs(url.query), body)
        except Exception as exc:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return True
        status, document = reply[0], reply[1]
        headers = reply[2] if len(reply) > 2 else None
        if isinstance(document, (bytes, bytearray)):
            self._send_payload(
                status, bytes(document), headers, content_type="application/octet-stream"
            )
        else:
            self._send_json(status, document, headers)
        return True

    # ------------------------------------------------------------------ #
    # query serving
    # ------------------------------------------------------------------ #

    def _serve_query(self, params: dict) -> None:
        queries = params.get("query")
        if not queries or not queries[0].strip():
            self._send_json(400, {"error": "missing 'query' parameter"})
            return
        reasoning: Optional[bool] = None
        if "reasoning" in params:
            reasoning = params["reasoning"][0] not in ("0", "false", "no")
        timeout_s: Optional[float] = None
        if "timeout" in params:
            try:
                timeout_s = float(params["timeout"][0])
            except ValueError:
                self._send_json(400, {"error": "invalid 'timeout' parameter"})
                return
        if "explain" in params and params["explain"][0] not in ("0", "false", "no"):
            try:
                document = self.service.explain(
                    queries[0], reasoning=reasoning, timeout_s=timeout_s
                )
            except QueryRejected as exc:
                self._send_json(503, {"error": str(exc)}, headers={"Retry-After": "1"})
                return
            except QueryTimeout as exc:
                self._send_json(504, {"error": str(exc)})
                return
            except SparqlParseError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._send_json(200, document)
            return
        prepared = {}

        def deliver(outcome: QueryOutcome) -> None:
            # Runs while the worker slot is held: serialization plus
            # (simulated) transmission are the worker's work, as in a
            # pre-threaded server writing the response socket itself.
            payload = json.dumps(_result_document(outcome)).encode("utf-8")
            prepared["payload"] = payload
            network: Optional[SimulatedNetwork] = getattr(self.server, "network", None)
            if network is not None:
                network.transmit(len(payload))

        try:
            outcome = self.service.execute(
                queries[0], reasoning=reasoning, timeout_s=timeout_s, deliver=deliver
            )
        except QueryRejected as exc:
            self._send_json(503, {"error": str(exc)}, headers={"Retry-After": "1"})
            return
        except QueryTimeout as exc:
            self._send_json(504, {"error": str(exc)})
            return
        except SparqlParseError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send_payload(
            200,
            prepared["payload"],
            headers={
                "X-Cache": "HIT" if outcome.cached else "MISS",
                "X-Epoch": f"{outcome.epoch[0]}.{outcome.epoch[1]}",
                "X-Elapsed-Ms": f"{outcome.elapsed_ms:.3f}",
            },
        )

    # ------------------------------------------------------------------ #
    # response plumbing
    # ------------------------------------------------------------------ #

    def _send_json(self, status: int, document: dict, headers: Optional[dict] = None) -> None:
        # Error and ops endpoints (health/metrics/stats) skip the simulated
        # uplink: only query responses travel to remote clients.
        self._send_payload(status, json.dumps(document).encode("utf-8"), headers)

    def _send_payload(
        self,
        status: int,
        payload: bytes,
        headers: Optional[dict] = None,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service (+ optional network)."""

    daemon_threads = True

    def __init__(
        self,
        address,
        service: QueryService,
        network: Optional[SimulatedNetwork],
        routes: Optional[dict] = None,
    ):
        super().__init__(address, _SparqlRequestHandler)
        self.service = service
        self.network = network
        self.routes = dict(routes) if routes else {}


class QueryServer:
    """The SPARQL-over-HTTP front door (start/stop lifecycle, context manager).

    >>> # doctest-style usage (see docs/operations.md for the full guide):
    >>> # server = QueryServer(QueryService(store)); server.start()
    >>> # ... SparqlClient(server.url).select("SELECT ...") ...
    >>> # server.stop()
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        network: Optional[SimulatedNetwork] = None,
        routes: Optional[dict] = None,
    ) -> None:
        self.service = service
        self._httpd = _ServiceHTTPServer((host, port), service, network, routes=routes)
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` (the port is concrete even for 0)."""
        return self._httpd.server_address

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host, port = self.address[0], self.address[1]
        return f"http://{host}:{port}"

    def start(self) -> "QueryServer":
        """Start serving on a daemon thread; returns self for chaining.

        A stopped server cannot be restarted — ``stop()`` closes the
        listening socket for good; create a new :class:`QueryServer` (the
        raise here beats a silently dead socket).
        """
        if self._closed:
            raise RuntimeError(
                "this QueryServer was stopped and its socket closed; "
                "create a new QueryServer to serve again"
            )
        if self._thread is not None:
            return self
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="succinctedge-http",
            daemon=True,
        )
        self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the socket, join the serving thread.

        Also closes the listening socket of a constructed-but-never-started
        server (``__init__`` binds the port), so no fd or port leaks when a
        caller bails out before ``start()``.
        """
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class SparqlClient:
    """Dependency-free client for the server (tests, examples, benchmark)."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, path: str, data: Optional[bytes] = None) -> dict:
        import urllib.error
        import urllib.request

        request = urllib.request.Request(self.base_url + path, data=data)
        if data is not None:
            request.add_header("Content-Type", "application/sparql-query")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                document = json.loads(response.read().decode("utf-8"))
                document["_status"] = response.status
                document["_cache"] = response.headers.get("X-Cache")
                document["_epoch"] = response.headers.get("X-Epoch")
                return document
        except urllib.error.HTTPError as error:
            document = json.loads(error.read().decode("utf-8") or "{}")
            document["_status"] = error.code
            return document

    def query(self, sparql: str, reasoning: Optional[bool] = None) -> dict:
        """POST one query; returns the parsed JSON document (+ meta keys)."""
        suffix = ""
        if reasoning is not None:
            suffix = f"?reasoning={1 if reasoning else 0}"
        return self._request("/sparql" + suffix, data=sparql.encode("utf-8"))

    def select_rows(self, sparql: str, reasoning: Optional[bool] = None) -> list:
        """Rows of a SELECT as lists of strings (raises on server errors)."""
        document = self.query(sparql, reasoning=reasoning)
        if document["_status"] != 200:
            raise RuntimeError(f"server error {document['_status']}: {document.get('error')}")
        return document["results"]["rows"]

    def explain(self, sparql: str, reasoning: Optional[bool] = None) -> dict:
        """Plan (but do not run) a query: the ``explain=1`` document."""
        suffix = "?explain=1"
        if reasoning is not None:
            suffix += f"&reasoning={1 if reasoning else 0}"
        document = self._request("/sparql" + suffix, data=sparql.encode("utf-8"))
        if document["_status"] != 200:
            raise RuntimeError(f"server error {document['_status']}: {document.get('error')}")
        return document

    def ask(self, sparql: str, reasoning: Optional[bool] = None) -> bool:
        """The boolean of an ASK query."""
        document = self.query(sparql, reasoning=reasoning)
        if document["_status"] != 200:
            raise RuntimeError(f"server error {document['_status']}: {document.get('error')}")
        return bool(document["boolean"])

    def health(self) -> dict:
        """The ``/healthz`` document."""
        return self._request("/healthz")

    def metrics(self) -> dict:
        """The ``/metrics`` document."""
        return self._request("/metrics")

    def stats(self) -> dict:
        """The ``/stats`` document."""
        return self._request("/stats")
