"""Tests for triple-pattern evaluation over the SDS layouts (Algorithms 3-4)."""

from __future__ import annotations

import pytest

from repro.query.tp_eval import TriplePatternEvaluator
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Literal
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.bindings import Binding
from tests.conftest import EX


@pytest.fixture()
def evaluator(toy_store):
    return TriplePatternEvaluator(toy_store, reasoning=True)


@pytest.fixture()
def plain_evaluator(toy_store):
    return TriplePatternEvaluator(toy_store, reasoning=False)


def values(bindings, name):
    return sorted(str(b[name]) for b in bindings)


class TestRdfTypePatterns:
    def test_explicit_concept_without_reasoning(self, plain_evaluator):
        pattern = TriplePattern(Variable("x"), RDF.type, EX.GraduateStudent)
        results = plain_evaluator.evaluate_all(pattern)
        assert values(results, "x") == [str(EX.alice)]

    def test_concept_interval_with_reasoning(self, evaluator):
        pattern = TriplePattern(Variable("x"), RDF.type, EX.Person)
        results = evaluator.evaluate_all(pattern)
        assert values(results, "x") == sorted(map(str, [EX.alice, EX.bob, EX.carol, EX.dave]))

    def test_reasoning_off_misses_inferred_members(self, plain_evaluator):
        pattern = TriplePattern(Variable("x"), RDF.type, EX.Person)
        assert plain_evaluator.evaluate_all(pattern) == []

    def test_unknown_concept_yields_nothing(self, evaluator):
        pattern = TriplePattern(Variable("x"), RDF.type, EX.Unknown)
        assert evaluator.evaluate_all(pattern) == []

    def test_bound_subject_membership_check(self, evaluator, plain_evaluator):
        pattern = TriplePattern(EX.alice, RDF.type, EX.Student)
        assert len(evaluator.evaluate_all(pattern)) == 1
        assert plain_evaluator.evaluate_all(pattern) == []

    def test_object_variable_lists_types(self, evaluator, plain_evaluator):
        pattern = TriplePattern(EX.alice, RDF.type, Variable("c"))
        with_reasoning = values(evaluator.evaluate_all(pattern), "c")
        without = values(plain_evaluator.evaluate_all(pattern), "c")
        assert str(EX.GraduateStudent) in without and len(without) == 1
        assert set(without) < set(with_reasoning)
        assert str(EX.Person) in with_reasoning

    def test_subject_and_object_variables(self, plain_evaluator, toy_data):
        pattern = TriplePattern(Variable("x"), RDF.type, Variable("c"))
        results = plain_evaluator.evaluate_all(pattern)
        expected = sum(1 for t in toy_data if t.predicate == RDF.type)
        assert len(results) == expected


class TestPropertyPatterns:
    def test_spo_algorithm3(self, evaluator):
        pattern = TriplePattern(EX.alice, EX.memberOf, Variable("o"))
        assert values(evaluator.evaluate_all(pattern), "o") == [str(EX.dept1)]

    def test_pos_algorithm4(self, evaluator):
        pattern = TriplePattern(Variable("s"), EX.advisor, EX.bob)
        assert values(evaluator.evaluate_all(pattern), "s") == [str(EX.alice)]

    def test_property_scan(self, plain_evaluator):
        pattern = TriplePattern(Variable("s"), EX.memberOf, Variable("o"))
        results = plain_evaluator.evaluate_all(pattern)
        assert len(results) == 2

    def test_property_hierarchy_reasoning(self, evaluator, plain_evaluator):
        pattern = TriplePattern(Variable("s"), EX.memberOf, Variable("o"))
        with_reasoning = evaluator.evaluate_all(pattern)
        assert len(with_reasoning) == 4  # memberOf + worksFor + headOf triples
        assert len(plain_evaluator.evaluate_all(pattern)) == 2

    def test_datatype_property(self, evaluator):
        pattern = TriplePattern(EX.alice, EX.name, Variable("n"))
        assert values(evaluator.evaluate_all(pattern), "n") == ["Alice"]

    def test_literal_bound_object(self, evaluator):
        pattern = TriplePattern(Variable("s"), EX.name, Literal("Bob"))
        assert values(evaluator.evaluate_all(pattern), "s") == [str(EX.bob)]

    def test_unknown_property(self, evaluator):
        pattern = TriplePattern(Variable("s"), EX.nosuch, Variable("o"))
        assert evaluator.evaluate_all(pattern) == []

    def test_fully_bound_existence_check(self, evaluator):
        hit = TriplePattern(EX.bob, EX.headOf, EX.dept1)
        miss = TriplePattern(EX.bob, EX.headOf, EX.dept2)
        assert len(evaluator.evaluate_all(hit)) == 1
        assert evaluator.evaluate_all(miss) == []

    def test_fully_bound_with_property_reasoning(self, evaluator, plain_evaluator):
        # bob memberOf dept1 holds only through headOf ⊑ worksFor ⊑ memberOf.
        pattern = TriplePattern(EX.bob, EX.memberOf, EX.dept1)
        assert len(evaluator.evaluate_all(pattern)) == 1
        assert plain_evaluator.evaluate_all(pattern) == []

    def test_binding_propagation(self, evaluator):
        pattern = TriplePattern(Variable("x"), EX.name, Variable("n"))
        binding = Binding({"x": EX.carol})
        results = list(evaluator.evaluate(pattern, binding))
        assert values(results, "n") == ["Carol"]

    def test_conflicting_binding_rejected(self, evaluator):
        pattern = TriplePattern(Variable("x"), EX.memberOf, Variable("x"))
        assert evaluator.evaluate_all(pattern) == []

    def test_same_variable_subject_object_requires_equality(self, toy_store):
        # Add a self-loop free store: the pattern (?x, advisor, ?x) must be empty.
        evaluator = TriplePatternEvaluator(toy_store)
        pattern = TriplePattern(Variable("x"), EX.advisor, Variable("x"))
        assert evaluator.evaluate_all(pattern) == []


class TestUnboundPredicate:
    def test_subject_bound(self, plain_evaluator, toy_data):
        pattern = TriplePattern(EX.alice, Variable("p"), Variable("o"))
        results = plain_evaluator.evaluate_all(pattern)
        expected = sum(1 for t in toy_data if t.subject == EX.alice)
        assert len(results) == expected
        assert str(RDF.type) in values(results, "p")

    def test_fully_unbound_counts_all_triples(self, plain_evaluator, toy_data):
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert len(plain_evaluator.evaluate_all(pattern)) == len(toy_data)

    def test_predicate_variable_bound_through_binding(self, plain_evaluator):
        pattern = TriplePattern(EX.alice, Variable("p"), Variable("o"))
        binding = Binding({"p": EX.name})
        results = list(plain_evaluator.evaluate(pattern, binding))
        assert values(results, "o") == ["Alice"]


class TestCardinalityEstimates:
    def test_rdf_type_estimate(self, evaluator, plain_evaluator):
        pattern = TriplePattern(Variable("x"), RDF.type, EX.Person)
        assert evaluator.estimate_cardinality(pattern) == 4
        assert plain_evaluator.estimate_cardinality(pattern) == 0

    def test_property_estimate_matches_algorithm2(self, evaluator):
        pattern = TriplePattern(Variable("x"), EX.name, Variable("n"))
        assert evaluator.estimate_cardinality(pattern) == 4

    def test_property_estimate_with_hierarchy(self, evaluator):
        pattern = TriplePattern(Variable("x"), EX.memberOf, Variable("o"))
        assert evaluator.estimate_cardinality(pattern) == 4

    def test_unknown_property_estimate_zero(self, evaluator):
        pattern = TriplePattern(Variable("x"), EX.nosuch, Variable("o"))
        assert evaluator.estimate_cardinality(pattern) == 0

    def test_variable_predicate_estimate_total(self, evaluator, toy_store):
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert evaluator.estimate_cardinality(pattern) == toy_store.triple_count
