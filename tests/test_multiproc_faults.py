"""Fault injection: the process backend fails cleanly and heals itself.

Worker processes die — OOM killers, segfaults in native extensions, admin
mistakes.  The contract under fire is strict:

* a query hit by a worker death either **retries to the correct result**
  or fails with a clean :class:`~repro.query.multiproc.WorkerPoolError` —
  never a hang, never a partial or duplicated row (results materialize
  before they are surfaced, so no half-consumed stream can escape);
* a corrupt or truncated store image fails the task with the store's own
  :class:`~repro.store.persistence.PersistenceError` carried back to the
  caller, and the pool stays healthy for the next query;
* after any of the above the pool **self-heals**: dead workers are
  replaced and the very next query runs normally.

``SIGKILL`` is the injection vehicle because it is the worst case — no
atexit handlers, no exception propagation, just a vanished process.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.query.engine import QueryEngine
from repro.query.multiproc import ProcessPoolQueryEngine, WorkerPoolError
from repro.store.persistence import PersistenceError, save_store_image
from repro.store.sharding import ShardedStore

PROBE = """
SELECT ?x ?n WHERE {
  ?x a <http://swat.cse.lehigh.edu/onto/univ-bench.owl#FullProfessor> .
  ?x <http://swat.cse.lehigh.edu/onto/univ-bench.owl#name> ?n .
}
"""

#: Everything in this module must finish fast; a test that would hang
#: without the pool's own timeout/restart machinery fails loudly instead.
_SUITE_DEADLINE_S = 120.0


@pytest.fixture()
def engine(small_lubm_store, tmp_path):
    engine = ProcessPoolQueryEngine(
        small_lubm_store, max_workers=2, workspace=str(tmp_path / "spill")
    )
    yield engine
    engine.close()


def _expected(store, sparql=PROBE):
    return sorted(QueryEngine(store).execute(sparql).to_tuples())


def _kill(pids):
    for pid in pids:
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass


# --------------------------------------------------------------------------- #
# worker death
# --------------------------------------------------------------------------- #


def test_sigkill_all_workers_retries_to_correct_result(engine, small_lubm_store):
    # Prime so there are real processes to kill, then kill every one of
    # them.  The engine's retry (heal + re-execute) must return the exact
    # sequential result — materialization means the failed attempt
    # surfaced zero rows, so the retry cannot duplicate any.
    engine.pool.prime()
    expected = _expected(small_lubm_store)
    _kill(engine.pool.worker_pids())
    result = sorted(engine.execute(PROBE).to_tuples())
    assert result == expected
    assert engine.pool.info()["restarts"] >= 1
    # Self-healed: the next query runs with no further restarts.
    before = engine.pool.info()["restarts"]
    assert sorted(engine.execute(PROBE).to_tuples()) == expected
    assert engine.pool.info()["restarts"] == before


def test_sigkill_mid_query_never_partial(small_lubm_store, small_lubm_catalog, tmp_path):
    """Kill workers *while* a scatter query is in flight, repeatedly.

    Every attempt must end in one of exactly two states: the full correct
    result (retry won) or a clean ``WorkerPoolError`` (retries exhausted).
    A partial row set — the failure mode this harness exists to catch —
    fails the assertion; a hang fails the suite deadline.
    """
    sharded = ShardedStore.from_store(small_lubm_store, shards=4)
    query = small_lubm_catalog.by_identifier()["S9"]
    expected = sorted(
        QueryEngine(small_lubm_store, reasoning=query.requires_reasoning)
        .execute(query.sparql)
        .to_tuples()
    )
    engine = ProcessPoolQueryEngine(
        sharded,
        reasoning=query.requires_reasoning,
        max_workers=2,
        batch_size=7,
        workspace=str(tmp_path / "spill"),
        retries=1,
    )
    deadline = time.monotonic() + _SUITE_DEADLINE_S
    outcomes = {"ok": 0, "failed": 0}
    try:
        for round_ in range(6):
            assert time.monotonic() < deadline, "fault suite exceeded its deadline"
            engine.pool.prime()
            victims = engine.pool.worker_pids()
            # Stagger the kill so some rounds hit mid-query and some hit
            # between tasks — both must stay clean.
            import threading

            timer = threading.Timer(0.005 * round_, _kill, args=(victims,))
            timer.start()
            try:
                result = sorted(engine.execute(query.sparql).to_tuples())
            except WorkerPoolError:
                outcomes["failed"] += 1
            else:
                assert result == expected, f"partial or wrong rows in round {round_}"
                outcomes["ok"] += 1
            finally:
                timer.cancel()
        # The engine must have survived every round; at least one round
        # must have produced the full result (the retry path works).
        assert outcomes["ok"] >= 1
        assert sorted(engine.execute(query.sparql).to_tuples()) == expected
    finally:
        engine.close()


def test_pool_restart_is_deterministic_during_sleep(small_lubm_store, tmp_path):
    # Pool-level determinism: a task caught by a worker death raises
    # WorkerPoolError from result() when the pool cannot transparently
    # retry (the task was already running); the pool is usable right after.
    engine = ProcessPoolQueryEngine(
        small_lubm_store, max_workers=2, workspace=str(tmp_path / "spill")
    )
    try:
        pool = engine.pool
        pool.prime()
        spec = engine.evaluator._attach_spec()
        future = pool.submit(spec, "sleep", (30.0,))
        time.sleep(0.2)  # let the worker start sleeping
        _kill(pool.worker_pids())
        with pytest.raises(WorkerPoolError):
            pool.result(future)
        assert pool.submit(spec, "ping", ()).result() is not None
    finally:
        engine.close()


def test_pool_exhaustion_self_heals(small_lubm_store, tmp_path):
    # Kill every worker repeatedly, back to back: the pool must keep
    # replacing them and never wedge into a permanently broken state.
    engine = ProcessPoolQueryEngine(
        small_lubm_store, max_workers=2, workspace=str(tmp_path / "spill")
    )
    expected = _expected(small_lubm_store)
    try:
        for _ in range(3):
            engine.pool.prime()
            _kill(engine.pool.worker_pids())
            assert sorted(engine.execute(PROBE).to_tuples()) == expected
        assert engine.pool.info()["alive_workers"] == 2
    finally:
        engine.close()


# --------------------------------------------------------------------------- #
# corrupt images
# --------------------------------------------------------------------------- #


def _corrupt_engine(path, store, tmp_path):
    engine = ProcessPoolQueryEngine(
        store, max_workers=2, workspace=str(tmp_path / "spill")
    )
    # Point the attach machinery at the damaged image: seed the saved-image
    # cache so the engine ships the bad path instead of re-saving.
    engine.evaluator._saved_images[0] = str(path)
    return engine


def test_truncated_image_fails_clean_and_pool_survives(small_lubm_store, tmp_path):
    path = tmp_path / "trunc.sedg"
    save_store_image(small_lubm_store, str(path), atomic=True)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    engine = _corrupt_engine(path, small_lubm_store, tmp_path)
    try:
        spec = engine.evaluator._attach_spec()
        assert spec["path"] == str(path)
        # "ping" deliberately skips attachment; a scan op forces the worker
        # to open (and checksum) the image.
        future = engine.pool.submit(spec, "type_concept", (0, None))
        with pytest.raises(PersistenceError):
            engine.pool.result(future)
        # The worker survived (the exception travelled back instead of
        # killing it) and the pool serves the intact store right after.
        engine.evaluator._saved_images.clear()
        assert sorted(engine.execute(PROBE).to_tuples()) == _expected(small_lubm_store)
        assert engine.pool.info()["restarts"] == 0
    finally:
        engine.close()


def test_crc_corrupt_image_fails_clean(small_lubm_store, tmp_path):
    path = tmp_path / "corrupt.sedg"
    save_store_image(small_lubm_store, str(path), atomic=True)
    data = bytearray(path.read_bytes())
    # The v4 checksum covers the TOC + meta region right after the 64-byte
    # header; flip one bit inside it so the CRC check must fire on attach.
    data[80] ^= 0xFF
    path.write_bytes(bytes(data))
    engine = _corrupt_engine(path, small_lubm_store, tmp_path)
    try:
        spec = engine.evaluator._attach_spec()
        future = engine.pool.submit(spec, "type_concept", (0, None))
        with pytest.raises(PersistenceError):
            engine.pool.result(future)
        engine.evaluator._saved_images.clear()
        assert sorted(engine.execute(PROBE).to_tuples()) == _expected(small_lubm_store)
    finally:
        engine.close()


# --------------------------------------------------------------------------- #
# timeouts
# --------------------------------------------------------------------------- #


def test_task_timeout_cannot_hang(small_lubm_store, tmp_path):
    # A wedged worker (here: sleeping far past the deadline) must fail the
    # task within ~task_timeout and leave a working pool behind.
    engine = ProcessPoolQueryEngine(
        small_lubm_store,
        max_workers=2,
        task_timeout=1.0,
        workspace=str(tmp_path / "spill"),
    )
    try:
        spec = engine.evaluator._attach_spec()
        started = time.monotonic()
        future = engine.pool.submit(spec, "sleep", (60.0,))
        with pytest.raises(WorkerPoolError):
            engine.pool.result(future)
        assert time.monotonic() - started < 30.0, "timeout did not bound the wait"
        assert sorted(engine.execute(PROBE).to_tuples()) == _expected(small_lubm_store)
    finally:
        engine.close()


def test_service_level_retry_on_worker_death(small_lubm_store):
    # The serving layer's own retry: a killed pool behind QueryService
    # still answers the request (heal + rerun) with full results.
    from repro.serve.service import QueryService

    service = QueryService(small_lubm_store, backend="process", process_workers=2)
    try:
        expected = _expected(small_lubm_store)
        outcome = service.execute(PROBE)
        assert sorted(outcome.result.to_tuples()) == expected
        service._process_pool.prime()
        _kill(service._process_pool.worker_pids())
        outcome = service.execute(PROBE + "# cache-buster")
        assert sorted(outcome.result.to_tuples()) == expected
        stats = service.stats()
        assert stats["backend"] == "process"
        assert stats["pool"]["alive_workers"] == 2
    finally:
        service.close()
