"""Thread-safe LRU cache for materialized query results.

Entries are keyed on ``(query text, reasoning flag, snapshot epoch)`` by the
:class:`~repro.serve.service.QueryService`.  The epoch component is the
invalidation mechanism: every applied write bumps the store's ``data_epoch``
(PR 3's accounting, aggregated across shards by
:class:`~repro.store.sharding.ShardedStore`), so post-write lookups miss and
the pre-write entries age out through the LRU bound — no explicit
invalidation pass, no stale reads at the current epoch.

The implementation lives in :mod:`repro.caching` (the same LRU backs the
engines' compiled-plan cache and the parallel executor's per-shard count
cache); this module keeps the serving layer's historical import path.
"""

from __future__ import annotations

from repro.caching import LruCache


class ResultCache(LruCache):
    """The serving layer's result/plan cache (a plain :class:`LruCache`)."""


__all__ = ["ResultCache"]
