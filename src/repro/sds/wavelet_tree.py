"""Balanced wavelet tree over an integer alphabet.

The wavelet tree (WT) is the workhorse of SuccinctEdge's PSO layout: one WT
per layer (property, subject, object) stores the identifier sequence of that
layer and answers ``access`` / ``rank`` / ``select`` in O(log sigma), plus the
``range_search`` primitive used by Algorithms 3 and 4 of the paper and the
symbol-interval variant used by LiteMat reasoning (Section 5.2).

The tree is balanced over the symbol interval ``[0, sigma)``: each node holds
a :class:`~repro.sds.bitvector.BitVector` whose ``i``-th bit says whether the
``i``-th element of the node's subsequence belongs to the lower (0) or the
upper (1) half of the node's symbol interval.

Besides the classic single-element operations, the tree exposes the batched
kernels the store layer evaluates triple patterns with:

* ``access_range(begin, end)`` — decode a whole position interval in one
  word-level pass per tree level (instead of one root-to-leaf walk per
  element);
* ``rank_many`` — rank many positions along a single root-to-leaf descent;
* ``select_many`` / ``select_range`` — materialise many occurrence positions
  with one forward bitmap scan per level on the way back up;
* batched ``range_search`` / ``range_search_symbols`` built from the above.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sds.bitvector import BitVector, BitVectorBuilder
from repro.sds.kernels import KERNEL_COUNTS


class _Node:
    """Internal wavelet-tree node covering the symbol interval [lo, hi).

    ``mid`` and ``is_leaf`` are precomputed plain attributes: they are read
    on every level of every descent, where a property call would dominate.
    """

    __slots__ = ("lo", "hi", "mid", "is_leaf", "bits", "left", "right")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.mid = (lo + hi) // 2
        self.is_leaf = hi - lo <= 1
        self.bits: Optional[BitVector] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


#: ``left``/``right`` reference marking a child with no node record (a leaf,
#: or the root of an empty subtree — distinguished by the child's interval).
NO_NODE_REF = (1 << 64) - 1

#: 64-bit words per node record in a serialised node table: word offset,
#: bitmap length, ones, the five word counts of a
#: :meth:`~repro.sds.bitvector.BitVector.from_buffers` directory, and the two
#: child references.
NODE_RECORD_WORDS = 10


class _LazyNode(_Node):
    """A :class:`_Node` materialised from a flat node table on first touch.

    ``bits`` / ``left`` / ``right`` are deliberately left unset: with
    ``__slots__``, reading an unset slot raises ``AttributeError``, which
    routes the *first* access through :meth:`__getattr__`; that materialises
    all three from the (typically mapped) table and assigns them into the
    slots, so every later access is a plain slot read with zero overhead.
    Descents therefore only ever pay for the nodes a query actually walks —
    the mechanism behind v4's O(1) wavelet-tree load.
    """

    __slots__ = ("_table", "_words", "_ref")

    def __init__(self, table, words, ref: int, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.mid = (lo + hi) // 2
        self.is_leaf = hi - lo <= 1
        self._table = table
        self._words = words
        self._ref = ref

    def __getattr__(self, name: str):
        if name in ("bits", "left", "right"):
            self._materialize()
            return object.__getattribute__(self, name)
        raise AttributeError(name)

    def _materialize(self) -> None:
        if self.is_leaf or self._ref == NO_NODE_REF:
            # Leaf, or the root of an empty subtree: no bitmap either way;
            # an empty internal node still grows (lazy) children so that the
            # skeleton matches what _build() yields for no data.
            self.bits = None
            if self.is_leaf:
                self.left = None
                self.right = None
            else:
                self.left = _LazyNode(self._table, self._words, NO_NODE_REF, self.lo, self.mid)
                self.right = _LazyNode(self._table, self._words, NO_NODE_REF, self.mid, self.hi)
            return
        table = self._table
        words = self._words
        base = self._ref * NODE_RECORD_WORDS
        cursor = table[base]
        length = table[base + 1]
        ones = table[base + 2]
        parts = []
        for index in range(5):
            count = table[base + 3 + index]
            parts.append(words[cursor : cursor + count])
            cursor += count
        self.bits = BitVector.from_buffers(parts[0], length, ones, *parts[1:])
        self.left = _LazyNode(table, words, table[base + 8], self.lo, self.mid)
        self.right = _LazyNode(table, words, table[base + 9], self.mid, self.hi)


class WaveletTree:
    """Immutable wavelet tree over a sequence of non-negative integers.

    Parameters
    ----------
    sequence:
        The integer sequence to index.
    alphabet_size:
        Optional explicit alphabet size ``sigma``; symbols must fall in
        ``[0, sigma)``.  Defaults to ``max(sequence) + 1``.
    """

    def __init__(self, sequence: Sequence[int], alphabet_size: Optional[int] = None) -> None:
        data = list(sequence)
        for value in data:
            if value < 0:
                raise ValueError(f"wavelet tree symbols must be non-negative, got {value}")
        if alphabet_size is None:
            alphabet_size = (max(data) + 1) if data else 1
        if data and max(data) >= alphabet_size:
            raise ValueError(
                f"symbol {max(data)} outside declared alphabet [0, {alphabet_size})"
            )
        self._length = len(data)
        self._sigma = max(1, alphabet_size)
        self._root = self._build(data, 0, self._sigma)
        self._symbol_counts: Dict[int, int] = {}
        for value in data:
            self._symbol_counts[value] = self._symbol_counts.get(value, 0) + 1

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _build(self, data: List[int], lo: int, hi: int) -> _Node:
        node = _Node(lo, hi)
        if hi - lo <= 1 or not data:
            # Leaves store no bitmap: the symbol is implied by the interval.
            if hi - lo > 1:
                node.left = self._build([], lo, node.mid)
                node.right = self._build([], node.mid, hi)
            return node
        mid = node.mid
        builder = BitVectorBuilder()
        bits: List[int] = []
        left_data: List[int] = []
        right_data: List[int] = []
        push_bit = bits.append
        push_left = left_data.append
        push_right = right_data.append
        for value in data:
            if value < mid:
                push_bit(0)
                push_left(value)
            else:
                push_bit(1)
                push_right(value)
        builder.extend(bits)
        node.bits = builder.build()
        node.left = self._build(left_data, lo, mid)
        node.right = self._build(right_data, mid, hi)
        return node

    @classmethod
    def from_node_table(
        cls,
        length: int,
        alphabet_size: int,
        symbol_counts: Dict[int, int],
        table,
        node_words,
    ) -> "WaveletTree":
        """Assemble a tree over a flat node table, materialising nodes lazily.

        The persistence-v4 constructor: ``table`` holds one
        :data:`NODE_RECORD_WORDS`-word record per data-bearing internal node
        (word offset, bitmap directory, child references, see
        :class:`_LazyNode`) and ``node_words`` the concatenated bitmap words
        — both typically 64-bit views over a mapped store image.  Only the
        root handle is created here; every node (including the skeletons of
        empty subtrees) is built on its first query touch and cached in
        place, so loading a tree costs O(1) regardless of ``length`` *and*
        of ``alphabet_size``.
        """
        tree = object.__new__(cls)
        tree._length = length
        tree._sigma = max(1, alphabet_size)
        tree._symbol_counts = dict(symbol_counts)
        root_ref = 0 if len(table) else NO_NODE_REF
        tree._root = _LazyNode(table, node_words, root_ref, 0, tree._sigma)
        return tree

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        return iter(self.access_range(0, self._length))

    def __repr__(self) -> str:
        return f"WaveletTree(len={self._length}, sigma={self._sigma})"

    @property
    def alphabet_size(self) -> int:
        """Size of the symbol alphabet ``sigma``."""
        return self._sigma

    def to_list(self) -> List[int]:
        """Materialise the sequence (testing helper)."""
        return self.access_range(0, self._length)

    # ------------------------------------------------------------------ #
    # SDS operations
    # ------------------------------------------------------------------ #

    def access(self, index: int) -> int:
        """Return the symbol stored at position ``index``."""
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        KERNEL_COUNTS["access"] += 1
        node = self._root
        while not node.is_leaf:
            assert node.bits is not None
            bit, ones_before = node.bits._access_rank1(index)
            if bit == 0:
                index = index - ones_before
                node = node.left  # type: ignore[assignment]
            else:
                index = ones_before
                node = node.right  # type: ignore[assignment]
        return node.lo

    __getitem__ = access

    def access_range(self, begin: int, end: int) -> List[int]:
        """Symbols at positions ``[begin, end)``, decoded level-by-level.

        The batched counterpart of :meth:`access`: every tree level is
        traversed once with word-level bitmap scans, so decoding a run of
        ``k`` symbols costs O(k · log sigma) cheap list operations instead of
        ``k`` independent root-to-leaf walks of rank calls.
        """
        begin = max(0, begin)
        end = min(self._length, end)
        if begin >= end:
            return []
        return self._decode_range(self._root, begin, end)

    def _decode_range(self, node: _Node, begin: int, end: int) -> List[int]:
        if begin >= end:
            return []
        if node.is_leaf or node.bits is None:
            return [node.lo] * (end - begin)
        if end - begin == 1:
            # Tiny runs (single-object probes during bind-propagation joins)
            # skip the per-level interleave machinery.
            index = begin
            while not node.is_leaf:
                if node.bits is None:
                    break
                bit, ones_before = node.bits._access_rank1(index)
                if bit == 0:
                    index = index - ones_before
                    node = node.left  # type: ignore[assignment]
                else:
                    index = ones_before
                    node = node.right  # type: ignore[assignment]
            return [node.lo]
        bits = node.bits
        ones_begin = bits._rank1(begin)
        ones_end = bits._rank1(end)
        left_begin = begin - ones_begin
        left_end = end - ones_end
        left_values = self._decode_range(node.left, left_begin, left_end)  # type: ignore[arg-type]
        right_values = self._decode_range(
            node.right, begin - left_begin, end - left_end  # type: ignore[arg-type]
        )
        if not right_values:
            return left_values
        if not left_values:
            return right_values
        # Interleave the two halves following this node's bitmap.
        ones = bits.scan_ones(begin, end)
        out: List[int] = []
        push = out.append
        left_iter = iter(left_values)
        right_iter = iter(right_values)
        next_left = next(left_iter, None)
        one_index = 0
        one_count = len(ones)
        for position in range(begin, end):
            if one_index < one_count and ones[one_index] == position:
                push(next(right_iter))
                one_index += 1
            else:
                push(next_left)  # type: ignore[arg-type]
                next_left = next(left_iter, None)
        return out

    def rank(self, index: int, symbol: int) -> int:
        """Number of occurrences of ``symbol`` in positions ``[0, index)``."""
        if not 0 <= index <= self._length:
            raise IndexError(f"rank index {index} out of range [0, {self._length}]")
        if not 0 <= symbol < self._sigma:
            return 0
        KERNEL_COUNTS["rank"] += 1
        node = self._root
        while not node.is_leaf:
            if node.bits is None:
                # Empty internal node: the subtree holds no elements.
                return 0
            if symbol < node.mid:
                index = index - node.bits._rank1(index)
                node = node.left  # type: ignore[assignment]
            else:
                index = node.bits._rank1(index)
                node = node.right  # type: ignore[assignment]
        return index

    def rank_many(self, indices: Sequence[int], symbol: int) -> List[int]:
        """Batched :meth:`rank`: one root-to-leaf descent ranks every index."""
        indices = list(indices)
        for index in indices:
            if not 0 <= index <= self._length:
                raise IndexError(f"rank index {index} out of range [0, {self._length}]")
        if not indices:
            return []
        if not 0 <= symbol < self._sigma:
            return [0] * len(indices)
        node = self._root
        current = indices
        while not node.is_leaf:
            if node.bits is None:
                return [0] * len(indices)
            bit = 0 if symbol < node.mid else 1
            current = node.bits.rank_many(current, bit)
            node = node.left if bit == 0 else node.right  # type: ignore[assignment]
        return current

    def count(self, symbol: int) -> int:
        """Total number of occurrences of ``symbol`` in the sequence."""
        return self._symbol_counts.get(symbol, 0)

    def select(self, occurrence: int, symbol: int) -> int:
        """Index of the ``occurrence``-th (1-based) occurrence of ``symbol``."""
        if occurrence <= 0:
            raise ValueError("select occurrence is 1-based and must be positive")
        if self.count(symbol) < occurrence:
            raise ValueError(
                f"symbol {symbol} occurs {self.count(symbol)} times, "
                f"cannot select occurrence {occurrence}"
            )
        KERNEL_COUNTS["select"] += 1
        path = self._path_to(symbol)
        position = occurrence - 1
        for parent, bit in reversed(path):
            assert parent.bits is not None
            if bit:
                position = parent.bits._select1(position + 1)
            else:
                position = parent.bits._select0(position + 1)
        return position

    def select_many(self, occurrences: Sequence[int], symbol: int) -> List[int]:
        """Positions of many ascending (1-based) occurrences of ``symbol``.

        The batched counterpart of :meth:`select`: one forward bitmap scan
        per level maps all occurrence positions back up the tree together.
        """
        occurrences = list(occurrences)
        if not occurrences:
            return []
        if occurrences[0] <= 0:
            raise ValueError("select occurrence is 1-based and must be positive")
        if self.count(symbol) < occurrences[-1]:
            raise ValueError(
                f"symbol {symbol} occurs {self.count(symbol)} times, "
                f"cannot select occurrence {occurrences[-1]}"
            )
        if len(occurrences) == 1:
            return [self.select(occurrences[0], symbol)]
        path = self._path_to(symbol)
        positions = [occurrence - 1 for occurrence in occurrences]
        for parent, bit in reversed(path):
            assert parent.bits is not None
            positions = parent.bits.select_many(
                [position + 1 for position in positions], bit
            )
        return positions

    def select_range(self, first: int, last: int, symbol: int) -> List[int]:
        """Positions of occurrences ``first..last`` (1-based, inclusive) of ``symbol``."""
        if first <= 0:
            raise ValueError("select occurrence is 1-based and must be positive")
        if last < first:
            return []
        return self.select_many(range(first, last + 1), symbol)

    def _rank_pair(self, begin: int, end: int, symbol: int) -> Tuple[int, int]:
        """``(rank(begin, symbol), rank(end, symbol))`` in one fused descent."""
        if not 0 <= symbol < self._sigma:
            return 0, 0
        KERNEL_COUNTS["rank"] += 1
        node = self._root
        while not node.is_leaf:
            bits = node.bits
            if bits is None:
                return 0, 0
            ones_begin = bits._rank1(begin)
            ones_end = bits._rank1(end)
            if symbol < node.mid:
                begin = begin - ones_begin
                end = end - ones_end
                node = node.left  # type: ignore[assignment]
            else:
                begin = ones_begin
                end = ones_end
                node = node.right  # type: ignore[assignment]
        return begin, end

    def _path_to(self, symbol: int) -> List[Tuple[_Node, int]]:
        """Root-to-leaf path of ``symbol``: ``(node, branch bit)`` pairs."""
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            bit = 0 if symbol < node.mid else 1
            path.append((node, bit))
            node = node.left if bit == 0 else node.right  # type: ignore[assignment]
        return path

    def range_search(self, begin: int, end: int, symbol: int) -> List[int]:
        """All positions of ``symbol`` inside ``[begin, end)``, in order.

        This is the paper's ``rangeSearch(a, b, c)`` primitive: it prunes the
        search using rank on the boundaries, then materialises the matching
        positions with one batched select scan per level.
        """
        begin = max(0, begin)
        end = min(self._length, end)
        if begin >= end:
            return []
        first, last = self._rank_pair(begin, end, symbol)
        return self.select_range(first + 1, last, symbol)

    def count_in_range(self, begin: int, end: int, symbol: int) -> int:
        """Number of occurrences of ``symbol`` inside ``[begin, end)``."""
        begin = max(0, begin)
        end = min(self._length, end)
        if begin >= end:
            return 0
        first, last = self._rank_pair(begin, end, symbol)
        return last - first

    def range_search_symbols(
        self, begin: int, end: int, symbol_lo: int, symbol_hi: int
    ) -> List[Tuple[int, int]]:
        """Positions in ``[begin, end)`` whose symbol lies in ``[symbol_lo, symbol_hi)``.

        Returns ``(position, symbol)`` pairs sorted by position.  This is the
        wavelet-tree range-report used to evaluate LiteMat identifier
        intervals (reasoning over concept/property hierarchies) without
        enumerating every individual sub-concept.  Matching positions are
        mapped back to the root with one batched select scan per level.
        """
        begin = max(0, begin)
        end = min(self._length, end)
        symbol_lo = max(0, symbol_lo)
        symbol_hi = min(self._sigma, symbol_hi)
        if begin >= end or symbol_lo >= symbol_hi:
            return []
        return self._collect_range(self._root, begin, end, symbol_lo, symbol_hi)

    def _collect_range(
        self,
        node: _Node,
        begin: int,
        end: int,
        symbol_lo: int,
        symbol_hi: int,
    ) -> List[Tuple[int, int]]:
        """Matching ``(position-in-node, symbol)`` pairs, sorted by position."""
        if begin >= end:
            return []
        if symbol_hi <= node.lo or symbol_lo >= node.hi:
            return []
        if symbol_lo <= node.lo and node.hi <= symbol_hi:
            # Fully covered: decode the interval directly.
            values = self._decode_range(node, begin, end)
            return list(zip(range(begin, end), values))
        assert node.bits is not None
        bits = node.bits
        left_begin = bits.rank(begin, 0)
        left_end = bits.rank(end, 0)
        lefts = self._collect_range(
            node.left, left_begin, left_end, symbol_lo, symbol_hi  # type: ignore[arg-type]
        )
        rights = self._collect_range(
            node.right, begin - left_begin, end - left_end, symbol_lo, symbol_hi  # type: ignore[arg-type]
        )
        # Map child positions back to this node's positions (batched select),
        # then merge the two sorted lists.
        left_positions = bits.select_many([position + 1 for position, _ in lefts], 0)
        right_positions = bits.select_many([position + 1 for position, _ in rights], 1)
        merged: List[Tuple[int, int]] = []
        push = merged.append
        li = ri = 0
        left_count = len(lefts)
        right_count = len(rights)
        while li < left_count and ri < right_count:
            if left_positions[li] < right_positions[ri]:
                push((left_positions[li], lefts[li][1]))
                li += 1
            else:
                push((right_positions[ri], rights[ri][1]))
                ri += 1
        while li < left_count:
            push((left_positions[li], lefts[li][1]))
            li += 1
        while ri < right_count:
            push((right_positions[ri], rights[ri][1]))
            ri += 1
        return merged

    def count_symbols_in_range(
        self, begin: int, end: int, symbol_lo: int, symbol_hi: int
    ) -> int:
        """Count positions in ``[begin, end)`` with symbol in ``[symbol_lo, symbol_hi)``."""
        begin = max(0, begin)
        end = min(self._length, end)
        symbol_lo = max(0, symbol_lo)
        symbol_hi = min(self._sigma, symbol_hi)
        if begin >= end or symbol_lo >= symbol_hi:
            return 0
        return self._count_range(self._root, begin, end, symbol_lo, symbol_hi)

    def _count_range(
        self, node: _Node, begin: int, end: int, symbol_lo: int, symbol_hi: int
    ) -> int:
        if begin >= end:
            return 0
        if symbol_hi <= node.lo or symbol_lo >= node.hi:
            return 0
        if symbol_lo <= node.lo and node.hi <= symbol_hi:
            return end - begin
        assert node.bits is not None
        left = self._count_range(
            node.left, node.bits.rank(begin, 0), node.bits.rank(end, 0), symbol_lo, symbol_hi  # type: ignore[arg-type]
        )
        right = self._count_range(
            node.right, node.bits.rank(begin, 1), node.bits.rank(end, 1), symbol_lo, symbol_hi  # type: ignore[arg-type]
        )
        return left + right

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #

    def size_in_bytes(self) -> int:
        """Approximate storage footprint of every node bitmap."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.bits is not None:
                total += node.bits.size_in_bytes()
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return total
