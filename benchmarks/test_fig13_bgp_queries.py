"""Figure 13 — basic graph pattern queries (multiple triple patterns, joins).

Queries M1-M5 of the paper's appendix: star and path joins of 2 to 11 triple
patterns, no reasoning involved.
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.baselines.registry import SYSTEM_ORDER
from repro.bench.harness import format_table, query_latency_row


def test_fig13_bgp_queries(benchmark, context, loaded_systems, results_dir):
    """Regenerate the Figure 13 series (join query latency)."""
    queries = context.catalog.bgp_queries()
    succinct = loaded_systems["SuccinctEdge"]
    sizes = {query.identifier: len(succinct.query(query.sparql, reasoning=False)) for query in queries}
    columns = [f"{query.identifier}({sizes[query.identifier]})" for query in queries]

    rows = {}
    for system_name in SYSTEM_ORDER:
        system = loaded_systems[system_name]
        cells = []
        for query in queries:
            # Best-of-3 hot runs (harness default, paper Section 7.3.3).
            measurement = query_latency_row(system, query, reasoning=False)
            cells.append(None if measurement is None else measurement.total_ms)
        rows[system_name] = cells
    table = format_table(
        "Figure 13: BGP queries M1-M5 (answer-set size in parentheses)",
        columns,
        rows,
        unit="ms, measured + simulated",
    )
    record_table(results_dir, "fig13_bgp_queries", table)

    benchmark.pedantic(lambda: succinct.query(queries[4].sparql), rounds=1, iterations=1)

    # Every system answers every M query; SuccinctEdge and the other stores
    # must agree on the answer-set sizes (correctness cross-check).
    for query in queries:
        for system_name in SYSTEM_ORDER:
            system = loaded_systems[system_name]
            assert len(system.query(query.sparql, reasoning=False)) == sizes[query.identifier]
