"""Tests for the UNION-rewriting reasoning used by the baseline systems."""

from __future__ import annotations

from repro.ontology.rewriting import (
    count_union_branches,
    expand_triple_pattern,
    rewrite_bgp_with_unions,
    rewrite_query_with_unions,
)
from repro.ontology.schema import OntologySchema
from repro.rdf.namespaces import Namespace, RDF
from repro.sparql.ast import BasicGraphPattern, TriplePattern, Variable
from repro.sparql.parser import parse_query

EX = Namespace("http://example.org/")


def schema() -> OntologySchema:
    s = OntologySchema()
    s.add_subclass(EX.GraduateStudent, EX.Student)
    s.add_subclass(EX.UndergraduateStudent, EX.Student)
    s.add_subproperty(EX.worksFor, EX.memberOf)
    s.add_subproperty(EX.headOf, EX.worksFor)
    return s


class TestPatternExpansion:
    def test_rdf_type_pattern_expands_over_subconcepts(self):
        pattern = TriplePattern(Variable("x"), RDF.type, EX.Student)
        variants = expand_triple_pattern(pattern, schema())
        objects = {variant.object for variant in variants}
        assert objects == {EX.Student, EX.GraduateStudent, EX.UndergraduateStudent}

    def test_property_pattern_expands_over_subproperties(self):
        pattern = TriplePattern(Variable("x"), EX.memberOf, Variable("y"))
        variants = expand_triple_pattern(pattern, schema())
        predicates = {variant.predicate for variant in variants}
        assert predicates == {EX.memberOf, EX.worksFor, EX.headOf}

    def test_leaf_terms_do_not_expand(self):
        pattern = TriplePattern(Variable("x"), EX.name, Variable("y"))
        assert expand_triple_pattern(pattern, schema()) == [pattern]
        type_pattern = TriplePattern(Variable("x"), RDF.type, EX.GraduateStudent)
        assert expand_triple_pattern(type_pattern, schema()) == [type_pattern]


class TestBgpRewriting:
    def test_cross_product_of_expansions(self):
        bgp = BasicGraphPattern(
            patterns=[
                TriplePattern(Variable("x"), RDF.type, EX.Student),
                TriplePattern(Variable("x"), EX.memberOf, Variable("y")),
            ]
        )
        branches = rewrite_bgp_with_unions(bgp, schema())
        assert len(branches) == 3 * 3
        assert all(len(branch.patterns) == 2 for branch in branches)

    def test_count_union_branches(self):
        query = parse_query(
            "SELECT ?x ?y WHERE { ?x a <http://example.org/Student> . ?x <http://example.org/memberOf> ?y }"
        )
        assert count_union_branches(query, schema()) == 9


class TestQueryRewriting:
    def test_query_without_inference_unchanged(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://example.org/name> ?n }")
        assert rewrite_query_with_unions(query, schema()) is query

    def test_rewritten_query_has_union_branches(self):
        query = parse_query("SELECT ?x WHERE { ?x a <http://example.org/Student> }")
        rewritten = rewrite_query_with_unions(query, schema())
        assert rewritten is not query
        assert len(rewritten.where.bgp) == 0
        assert len(rewritten.where.unions) == 1
        assert len(rewritten.where.unions[0].branches) == 3

    def test_filters_copied_into_every_branch(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x a <http://example.org/Student> . ?x <http://example.org/age> ?v . FILTER(?v > 20) }"
        )
        rewritten = rewrite_query_with_unions(query, schema())
        for branch in rewritten.where.unions[0].branches:
            assert len(branch.filters) == 1

    def test_projection_preserved(self):
        query = parse_query("SELECT DISTINCT ?x WHERE { ?x a <http://example.org/Student> } LIMIT 3")
        rewritten = rewrite_query_with_unions(query, schema())
        assert rewritten.distinct
        assert rewritten.limit == 3
        assert rewritten.projected_names() == ["x"]
