"""Shared fixtures for the benchmark suite.

Every benchmark file regenerates one table or figure of the paper's
evaluation (Section 7).  The datasets and the loaded systems are prepared
once per session; each benchmark prints its paper-style table and also writes
it to ``benchmarks/results/<experiment>.txt`` so the numbers recorded in
EXPERIMENTS.md can be refreshed from a single run.

Scale is controlled by ``REPRO_BENCH_SCALE`` (``small`` / ``medium`` /
``full``); the default ``medium`` keeps the whole suite in the minutes range
on a laptop while preserving the relative behaviour of the systems.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import BenchmarkContext, load_all_systems, prepare_datasets

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_BENCH_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark test ``slow``.

    Together with the ``-m "not slow"`` default in ``pyproject.toml`` this
    keeps the benchmark suite out of the tier-1 run; CI's benchmark-smoke job
    (and anyone refreshing the paper tables) selects it with ``-m slow``.
    """
    for item in items:
        try:
            in_bench_dir = _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents
        except OSError:
            in_bench_dir = False
        if in_bench_dir:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def context() -> BenchmarkContext:
    """Datasets (LUBM + ENGIE) shared by every benchmark."""
    return prepare_datasets()


@pytest.fixture(scope="session")
def loaded_systems(context):
    """Every evaluated system loaded with the full LUBM graph."""
    return load_all_systems(context)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the rendered benchmark tables."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
