"""Query graph construction (paper Section 5.1, Figure 6).

Each triple pattern of the basic graph pattern becomes a node; two nodes are
connected when they share a variable, and the edge is labelled with the join
type derived from the positions of the shared variable (SS, SO/OS, OO, plus
the rarer SP/OP/PP combinations that the optimizer de-prioritises).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.sparql.ast import TriplePattern, Variable


@dataclass
class QueryNode:
    """One triple pattern of the query graph."""

    index: int
    pattern: TriplePattern

    @property
    def is_rdf_type(self) -> bool:
        """Whether the node's predicate is ``rdf:type``."""
        return self.pattern.is_rdf_type

    def variable_positions(self) -> Dict[str, List[str]]:
        """Map variable name -> positions (``s``/``p``/``o``) where it occurs."""
        positions: Dict[str, List[str]] = {}
        for slot_name, slot in (
            ("s", self.pattern.subject),
            ("p", self.pattern.predicate),
            ("o", self.pattern.object),
        ):
            if isinstance(slot, Variable):
                positions.setdefault(slot.name, []).append(slot_name)
        return positions

    def __repr__(self) -> str:
        return f"QueryNode(tp{self.index + 1}: {self.pattern})"


@dataclass(frozen=True)
class JoinEdge:
    """An edge of the query graph: two nodes joined through shared variables.

    ``join_types`` holds one label per shared variable, e.g. ``"SS"`` when the
    variable is the subject of both patterns, ``"SO"`` when it is the subject
    of ``left`` and the object of ``right``.
    """

    left: int
    right: int
    variables: Tuple[str, ...]
    join_types: Tuple[str, ...]

    def involves(self, node_index: int) -> bool:
        """Whether the edge touches ``node_index``."""
        return node_index in (self.left, self.right)

    def other(self, node_index: int) -> int:
        """The endpoint opposite to ``node_index``."""
        if node_index == self.left:
            return self.right
        if node_index == self.right:
            return self.left
        raise ValueError(f"edge {self} does not involve node {node_index}")

    def join_type_from(self, node_index: int) -> str:
        """Best join label oriented from ``node_index`` (``SS`` preferred)."""
        labels = []
        for label in self.join_types:
            if node_index == self.left:
                labels.append(label)
            else:
                labels.append(label[::-1])
        # SS is the most favourable for the PSO layout, then S-O combinations.
        for preferred in ("SS", "SO", "OS", "OO"):
            if preferred in labels:
                return preferred
        return labels[0] if labels else ""


@dataclass
class QueryGraph:
    """The query graph of a basic graph pattern."""

    nodes: List[QueryNode] = field(default_factory=list)
    edges: List[JoinEdge] = field(default_factory=list)

    @classmethod
    def from_patterns(cls, patterns: Sequence[TriplePattern]) -> "QueryGraph":
        """Build the graph from the triple patterns of a BGP."""
        nodes = [QueryNode(index=i, pattern=pattern) for i, pattern in enumerate(patterns)]
        edges: List[JoinEdge] = []
        for i in range(len(nodes)):
            positions_i = nodes[i].variable_positions()
            for j in range(i + 1, len(nodes)):
                positions_j = nodes[j].variable_positions()
                shared = sorted(set(positions_i) & set(positions_j))
                if not shared:
                    continue
                labels: List[str] = []
                for name in shared:
                    for pos_i in positions_i[name]:
                        for pos_j in positions_j[name]:
                            labels.append(f"{pos_i.upper()}{pos_j.upper()}")
                edges.append(
                    JoinEdge(
                        left=i,
                        right=j,
                        variables=tuple(shared),
                        join_types=tuple(labels),
                    )
                )
        return cls(nodes=nodes, edges=edges)

    def __len__(self) -> int:
        return len(self.nodes)

    def neighbours(self, node_index: int) -> List[Tuple[int, JoinEdge]]:
        """Adjacent nodes of ``node_index`` with the connecting edge."""
        result = []
        for edge in self.edges:
            if edge.involves(node_index):
                result.append((edge.other(node_index), edge))
        return result

    def edges_between(self, done: Set[int], candidate: int) -> List[JoinEdge]:
        """Edges linking ``candidate`` to any node already in ``done``."""
        return [
            edge
            for edge in self.edges
            if edge.involves(candidate) and edge.other(candidate) in done
        ]

    def join_variables(self) -> Set[str]:
        """Variables shared by at least two triple patterns."""
        names: Set[str] = set()
        for edge in self.edges:
            names.update(edge.variables)
        return names
