"""Fixed-width packed integer sequence.

SuccinctEdge stores flat identifier layers (for example the pointers from
datatype-property subjects into the literal store) as packed integer arrays:
every value is stored with ``ceil(log2(max_value + 1))`` bits, which keeps the
memory footprint close to the information-theoretic minimum while retaining
O(1) random access.

Values are packed little-endian into 64-bit words (a value may straddle a
word boundary), so construction and the batched ``access_range`` kernel run
word-at-a-time instead of manipulating one huge Python integer — the seed
implementation's single big-int buffer made both construction and slicing
quadratic in the sequence length.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.sds.kernels import KERNEL_COUNTS, WORD_BITS as _WORD_BITS, WORD_MASK as _WORD_MASK


class IntSequence:
    """Immutable fixed-width integer array with O(1) access.

    Values are packed into 64-bit words; the width is derived from the
    maximum value unless given explicitly.
    """

    __slots__ = ("_words", "_width", "_length", "_mask")

    def __init__(self, values: Sequence[int], width: Optional[int] = None) -> None:
        data = list(values)
        for value in data:
            if value < 0:
                raise ValueError(f"IntSequence values must be non-negative, got {value}")
        if width is None:
            width = max(1, max(data).bit_length()) if data else 1
        if data and max(data).bit_length() > width:
            raise ValueError(
                f"value {max(data)} does not fit in declared width {width}"
            )
        self._width = width
        self._length = len(data)
        self._mask = (1 << width) - 1
        words: List[int] = []
        current = 0
        filled = 0
        for value in data:
            current |= (value << filled) & _WORD_MASK
            filled += width
            while filled >= _WORD_BITS:
                words.append(current)
                filled -= _WORD_BITS
                # Bits of ``value`` that spilled past the word boundary.
                current = value >> (width - filled) if filled else 0
                current &= _WORD_MASK
        if filled:
            words.append(current)
        self._words = array("Q", words)

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        return iter(self.access_range(0, self._length))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntSequence):
            return NotImplemented
        return (
            self._length == other._length
            and self._width == other._width
            and self._words == other._words
        )

    def __hash__(self) -> int:
        return hash((self._length, self._width, self._words.tobytes()))

    def __repr__(self) -> str:
        preview = ", ".join(str(v) for v in self.access_range(0, min(8, self._length)))
        suffix = ", ..." if self._length > 8 else ""
        return f"IntSequence([{preview}{suffix}], width={self._width})"

    @property
    def width(self) -> int:
        """Number of bits used per value."""
        return self._width

    def access(self, index: int) -> int:
        """Return the value stored at ``index``."""
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range [0, {self._length})")
        width = self._width
        bit_index = index * width
        word_index, offset = divmod(bit_index, _WORD_BITS)
        value = self._words[word_index] >> offset
        spilled = offset + width - _WORD_BITS
        consumed = _WORD_BITS - offset
        while spilled > 0:
            word_index += 1
            value |= self._words[word_index] << consumed
            consumed += _WORD_BITS
            spilled -= _WORD_BITS
        return value & self._mask

    __getitem__ = access

    def access_range(self, start: int, stop: int) -> List[int]:
        """Values at positions ``[start, stop)`` decoded in one word-level pass.

        The batched counterpart of :meth:`access`: the backing words are
        walked once, so materialising a run of ``k`` values costs
        O(k·width/64 + k) instead of ``k`` independent bit-window reads.
        """
        start = max(0, start)
        stop = min(self._length, stop)
        if start >= stop:
            return []
        KERNEL_COUNTS["access_range"] += 1
        width = self._width
        mask = self._mask
        words = self._words
        word_count = len(words)
        out: List[int] = []
        push = out.append
        bit_index = start * width
        word_index, offset = divmod(bit_index, _WORD_BITS)
        buffer = words[word_index] >> offset
        available = _WORD_BITS - offset
        word_index += 1
        for _ in range(stop - start):
            while available < width and word_index < word_count:
                buffer |= words[word_index] << available
                available += _WORD_BITS
                word_index += 1
            push(buffer & mask)
            buffer >>= width
            available -= width
        return out

    def to_list(self) -> List[int]:
        """Materialise the sequence as a plain list."""
        return self.access_range(0, self._length)

    def size_in_bytes(self) -> int:
        """Approximate packed storage footprint in bytes."""
        return (self._length * self._width + 7) // 8

    @classmethod
    def from_iterable(cls, values: Iterable[int], width: Optional[int] = None) -> "IntSequence":
        """Build from any iterable of non-negative integers."""
        return cls(list(values), width=width)

    @classmethod
    def from_buffers(cls, words, length: int, width: int) -> "IntSequence":
        """Assemble a sequence around a pre-packed word buffer without copying.

        The persistence-v4 zero-copy constructor: ``words`` is a 64-bit word
        buffer (``array('Q')`` or a read-only ``memoryview`` aliasing a
        mapped store image) holding exactly the packed payload the regular
        constructor would have produced for ``length`` values of ``width``
        bits each.  No repacking happens, so construction is O(1).
        """
        if width <= 0:
            raise ValueError(f"IntSequence width must be positive, got {width}")
        self = object.__new__(cls)
        self._words = words
        self._width = width
        self._length = length
        self._mask = (1 << width) - 1
        return self
