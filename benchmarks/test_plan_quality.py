"""Plan quality: cost-based vs heuristic planner, measured in SDS kernel calls.

The PR-5 acceptance experiment: every paper query (S1-S15, M1-M5, R1-R6)
plus the A1-A6 analytics additions runs under both planners against the same
store.  Plans are warmed first (the serving layer caches them), then one
execution per planner is measured with the kernel-call counters of
:mod:`repro.sds.kernels`.  Results must be multiset-identical — a join
reorder may permute rows of an unordered SELECT but never change them — and
the cost-based planner must *strictly* reduce kernel calls on at least three
queries.

Results land in ``benchmarks/results/plan_quality.txt``.
"""

from __future__ import annotations

from repro.query.engine import QueryEngine
from repro.sds.kernels import total_kernel_calls
from repro.sparql.bindings import AskResult
from repro.store.succinct_edge import SuccinctEdge
from repro.bench.harness import bench_scale, record_table


def _normalized(result):
    if isinstance(result, AskResult):
        return ("ask", result.boolean)
    return sorted(str(row) for row in result.to_tuples())


def _measured_run(engine: QueryEngine, sparql: str):
    before = total_kernel_calls()
    result = engine.execute(sparql)
    _rows = _normalized(result)  # materializes the lazy result inside the window
    return _rows, total_kernel_calls() - before


def test_cost_based_plans_reduce_kernel_calls(context, results_dir):
    store_instance = SuccinctEdge.from_graph(
        context.full_graph, ontology=context.lubm.ontology
    )
    cost_engine = QueryEngine(store_instance, reasoning=True, planner="cost")
    heuristic_engine = QueryEngine(store_instance, reasoning=True, planner="heuristic")

    lines = [
        f"PR 5 plan quality: SDS kernel calls per query, cost-based vs heuristic "
        f"planner (LUBM {bench_scale()} scale, reasoning on, warm plans)",
        "",
        f"{'query':>6} {'heuristic':>12} {'cost-based':>12} {'delta':>9}  winner",
        "-" * 60,
    ]
    wins = 0
    losses = 0
    mismatches = []
    totals = [0, 0]
    for query in context.catalog.extended_queries():
        # Warm both plan caches so planning probes are not measured.
        cost_engine.execute(query.sparql)
        heuristic_engine.execute(query.sparql)
        heuristic_rows, heuristic_calls = _measured_run(heuristic_engine, query.sparql)
        cost_rows, cost_calls = _measured_run(cost_engine, query.sparql)
        if cost_rows != heuristic_rows:
            mismatches.append(query.identifier)
        totals[0] += heuristic_calls
        totals[1] += cost_calls
        if cost_calls < heuristic_calls:
            wins += 1
            winner = "cost"
        elif cost_calls > heuristic_calls:
            losses += 1
            winner = "heuristic"
        else:
            winner = "tie"
        delta = (
            f"{(cost_calls - heuristic_calls) / heuristic_calls * 100.0:+.1f}%"
            if heuristic_calls
            else "n/a"
        )
        lines.append(
            f"{query.identifier:>6} {heuristic_calls:>12} {cost_calls:>12} {delta:>9}  {winner}"
        )
    lines.append("-" * 60)
    lines.append(
        f"{'total':>6} {totals[0]:>12} {totals[1]:>12} "
        f"{(totals[1] - totals[0]) / totals[0] * 100.0:+8.1f}%"
    )
    lines.append("")
    lines.append(
        f"strict wins (cost < heuristic): {wins} · losses: {losses} · "
        f"result mismatches: {len(mismatches)}"
    )
    record_table(results_dir, "plan_quality", "\n".join(lines))

    assert not mismatches, f"planners disagree on results: {mismatches}"
    assert wins >= 3, f"cost-based planner won only {wins} queries"
    assert totals[1] <= totals[0], "cost-based planner must not lose in aggregate"
