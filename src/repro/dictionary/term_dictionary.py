"""Concept, property and instance dictionaries.

Every dictionary provides the two basic operations the paper requires —
``string-to-id`` (*locate*) and ``id-to-string`` (*extract*) — plus per-entry
occurrence counters that feed the query optimizer's statistics (paper
Section 5.1: "each dictionary persists the number of occurrences of each of
its entries").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ontology.litemat import LiteMatEncoding
from repro.rdf.terms import Term, URI


class _BaseDictionary:
    """Shared bidirectional mapping with occurrence counters."""

    def __init__(self) -> None:
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: Dict[int, Term] = {}
        self._occurrences: Dict[int, int] = {}

    # locate / extract --------------------------------------------------- #

    def locate(self, term: Term) -> int:
        """string-to-id: identifier of ``term``; raises :class:`KeyError` if absent."""
        return self._term_to_id[term]

    def try_locate(self, term: Term) -> Optional[int]:
        """string-to-id, returning ``None`` for unknown terms."""
        return self._term_to_id.get(term)

    def extract(self, identifier: int) -> Term:
        """id-to-string: term carrying ``identifier``; raises :class:`KeyError` if absent."""
        return self._id_to_term[identifier]

    def try_extract(self, identifier: int) -> Optional[Term]:
        """id-to-string, returning ``None`` for unknown identifiers."""
        return self._id_to_term.get(identifier)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._term_to_id)

    def terms(self) -> List[Term]:
        """All terms in the dictionary."""
        return list(self._term_to_id)

    def identifiers(self) -> List[int]:
        """All identifiers in the dictionary."""
        return list(self._id_to_term)

    # occurrence statistics ---------------------------------------------- #

    def record_occurrence(self, identifier: int, count: int = 1) -> None:
        """Increment the occurrence counter of ``identifier``."""
        self._occurrences[identifier] = self._occurrences.get(identifier, 0) + count

    def occurrences(self, identifier: int) -> int:
        """Number of recorded occurrences of ``identifier``."""
        return self._occurrences.get(identifier, 0)

    def occurrences_of_term(self, term: Term) -> int:
        """Number of recorded occurrences of ``term`` (0 when unknown)."""
        identifier = self.try_locate(term)
        return 0 if identifier is None else self.occurrences(identifier)

    # storage accounting -------------------------------------------------- #

    def size_in_bytes(self) -> int:
        """Approximate serialised size: term strings + fixed-size id entries."""
        total = 0
        for term, identifier in self._term_to_id.items():
            total += len(str(term).encode("utf-8"))
            total += 8  # identifier
            total += 4  # occurrence counter
        return total

    def _register(self, term: Term, identifier: int) -> None:
        if term in self._term_to_id:
            existing = self._term_to_id[term]
            if existing != identifier:
                raise ValueError(f"term {term} already mapped to {existing}, cannot remap to {identifier}")
            return
        if identifier in self._id_to_term:
            raise ValueError(f"identifier {identifier} already used by {self._id_to_term[identifier]}")
        self._term_to_id[term] = identifier
        self._id_to_term[identifier] = term


class ConceptDictionary(_BaseDictionary):
    """Dictionary of ontology concepts, keyed by LiteMat identifiers.

    Besides locate/extract it exposes the LiteMat metadata needed at query
    time (identifier intervals for subsumption reasoning).
    """

    def __init__(self, encoding: LiteMatEncoding) -> None:
        super().__init__()
        self._encoding = encoding
        for term in encoding.terms():
            self._register(term, encoding.encode(term))

    @property
    def encoding(self) -> LiteMatEncoding:
        """The underlying LiteMat encoding."""
        return self._encoding

    def interval(self, concept: URI) -> Tuple[int, int]:
        """Identifier interval covering ``concept`` and all its sub-concepts."""
        return self._encoding.interval(concept)

    def hierarchical_occurrences(self, concept: URI) -> int:
        """Occurrences of ``concept`` plus all of its sub-concepts.

        This is the paper's hierarchy-aware statistic: the count for a concept
        is the sum over its whole sub-hierarchy (Section 5.1).
        """
        lower, upper = self.interval(concept)
        return sum(
            count
            for identifier, count in self._occurrences.items()
            if lower <= identifier < upper
        )


class PropertyDictionary(_BaseDictionary):
    """Dictionary of properties, keyed by LiteMat identifiers."""

    def __init__(self, encoding: LiteMatEncoding) -> None:
        super().__init__()
        self._encoding = encoding
        for term in encoding.terms():
            self._register(term, encoding.encode(term))

    @property
    def encoding(self) -> LiteMatEncoding:
        """The underlying LiteMat encoding."""
        return self._encoding

    def interval(self, prop: URI) -> Tuple[int, int]:
        """Identifier interval covering ``prop`` and all its sub-properties."""
        return self._encoding.interval(prop)

    def hierarchical_occurrences(self, prop: URI) -> int:
        """Occurrences of ``prop`` plus all of its sub-properties."""
        lower, upper = self.interval(prop)
        return sum(
            count
            for identifier, count in self._occurrences.items()
            if lower <= identifier < upper
        )


class InstanceDictionary(_BaseDictionary):
    """Dictionary of individuals (URIs and blank nodes).

    Each distinct entry receives an arbitrary, sequential integer identifier
    (paper Section 3.2, last paragraph).  Identifiers start at 1; 0 is
    reserved as the "unknown" sentinel.
    """

    def __init__(self) -> None:
        super().__init__()
        self._next_id = 1

    def add(self, term: Term) -> int:
        """Add ``term`` if absent; return its identifier either way."""
        existing = self.try_locate(term)
        if existing is not None:
            return existing
        identifier = self._next_id
        self._next_id += 1
        self._register(term, identifier)
        return identifier

    def add_all(self, terms: Iterable[Term]) -> None:
        """Add every term of ``terms``."""
        for term in terms:
            self.add(term)

    @property
    def capacity(self) -> int:
        """Smallest integer strictly greater than every assigned identifier."""
        return self._next_id
