"""LUBM(1)-style synthetic dataset generator.

The paper's evaluation uses the Lehigh University Benchmark with one
university (>103,000 triples) plus truncated subsets of 1K/5K/10K/25K/50K
triples.  The original UBA generator is a Java program; this module is a
deterministic pure-Python re-implementation producing:

* the univ-bench ontology (class and property hierarchies needed by the
  reasoning queries R1-R6);
* an ABox of roughly 100k triples with the usual LUBM entities (departments,
  professors, students, courses, publications);
* **landmark entities** whose cardinalities match the answer-set sizes used
  by the paper's Tables 1 and 2 exactly (4/66/129/257/513 for ``S,P,?o`` and
  5/17/135/283/521 for ``?s,P,O``), so the single-triple-pattern experiments
  reproduce the same columns;
* the subset slicing helper used by the storage experiments.

All randomness is drawn from a seeded :class:`random.Random`, so two calls
with the same parameters produce identical graphs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespaces import LUBM, RDF, RDFS
from repro.rdf.terms import Literal, Triple, URI

_DATA_PREFIX = "http://www.University0.edu/"


# --------------------------------------------------------------------------- #
# ontology
# --------------------------------------------------------------------------- #


def lubm_ontology() -> Graph:
    """The univ-bench class and property hierarchies (ρdf subset).

    Only the axioms relevant to ρdf reasoning are produced: ``rdfs:subClassOf``,
    ``rdfs:subPropertyOf``, ``rdfs:domain`` and ``rdfs:range``.
    """
    graph = Graph()

    def subclass(child: str, parent: str) -> None:
        graph.add(Triple(LUBM[child], RDFS.subClassOf, LUBM[parent]))

    def subproperty(child: str, parent: str) -> None:
        graph.add(Triple(LUBM[child], RDFS.subPropertyOf, LUBM[parent]))

    def domain(prop: str, concept: str) -> None:
        graph.add(Triple(LUBM[prop], RDFS.domain, LUBM[concept]))

    def range_(prop: str, concept: str) -> None:
        graph.add(Triple(LUBM[prop], RDFS.range, LUBM[concept]))

    # Class hierarchy (the fragment exercised by the evaluation queries).
    subclass("Employee", "Person")
    subclass("Faculty", "Employee")
    subclass("Professor", "Faculty")
    subclass("FullProfessor", "Professor")
    subclass("AssociateProfessor", "Professor")
    subclass("AssistantProfessor", "Professor")
    subclass("VisitingProfessor", "Professor")
    subclass("Lecturer", "Faculty")
    subclass("PostDoc", "Faculty")
    subclass("Student", "Person")
    subclass("UndergraduateStudent", "Student")
    subclass("GraduateStudent", "Student")
    subclass("TeachingAssistant", "Person")
    subclass("ResearchAssistant", "Person")
    subclass("Chair", "Professor")
    subclass("Dean", "Professor")
    subclass("Director", "Person")
    subclass("University", "Organization")
    subclass("Department", "Organization")
    subclass("ResearchGroup", "Organization")
    subclass("Institute", "Organization")
    subclass("Program", "Organization")
    subclass("College", "Organization")
    subclass("GraduateCourse", "Course")
    subclass("Article", "Publication")
    subclass("Book", "Publication")
    subclass("ConferencePaper", "Article")
    subclass("JournalArticle", "Article")
    subclass("TechnicalReport", "Publication")
    subclass("Manual", "Publication")
    subclass("Software", "Publication")
    subclass("UnofficialPublication", "Publication")
    subclass("Specification", "Publication")

    # Property hierarchy.
    subproperty("worksFor", "memberOf")
    subproperty("headOf", "worksFor")
    subproperty("undergraduateDegreeFrom", "degreeFrom")
    subproperty("mastersDegreeFrom", "degreeFrom")
    subproperty("doctoralDegreeFrom", "degreeFrom")

    # Domains and ranges of the properties used by the generator.
    domain("memberOf", "Person")
    range_("memberOf", "Organization")
    domain("worksFor", "Person")
    range_("worksFor", "Organization")
    domain("headOf", "Person")
    range_("headOf", "Organization")
    domain("teacherOf", "Faculty")
    range_("teacherOf", "Course")
    domain("takesCourse", "Student")
    range_("takesCourse", "Course")
    domain("advisor", "Person")
    range_("advisor", "Professor")
    domain("publicationAuthor", "Publication")
    range_("publicationAuthor", "Person")
    domain("subOrganizationOf", "Organization")
    range_("subOrganizationOf", "Organization")
    domain("degreeFrom", "Person")
    range_("degreeFrom", "University")
    domain("teachingAssistantOf", "TeachingAssistant")
    range_("teachingAssistantOf", "Course")
    return graph


# --------------------------------------------------------------------------- #
# dataset container
# --------------------------------------------------------------------------- #


@dataclass
class LubmDataset:
    """A generated LUBM dataset: ABox graph, ontology and landmark constants.

    ``landmarks`` maps symbolic names (e.g. ``"pub_authors_513"``) to the URIs
    or literals the benchmark queries plug into their templates; the attached
    integer is the exact answer-set cardinality the landmark guarantees.
    """

    graph: Graph
    ontology: Graph
    landmarks: Dict[str, Tuple[URI, int]] = field(default_factory=dict)
    literal_landmarks: Dict[str, Tuple[Literal, int]] = field(default_factory=dict)

    @property
    def triple_count(self) -> int:
        """Number of ABox triples."""
        return len(self.graph)

    def landmark_uri(self, name: str) -> URI:
        """URI of the landmark registered under ``name``."""
        return self.landmarks[name][0]

    def landmark_cardinality(self, name: str) -> int:
        """Guaranteed answer-set size of the landmark registered under ``name``."""
        if name in self.landmarks:
            return self.landmarks[name][1]
        return self.literal_landmarks[name][1]

    def landmark_literal(self, name: str) -> Literal:
        """Literal of the landmark registered under ``name``."""
        return self.literal_landmarks[name][0]


# --------------------------------------------------------------------------- #
# generator
# --------------------------------------------------------------------------- #

#: Faculty counts per department (FullProfessor, AssociateProfessor,
#: AssistantProfessor, Lecturer) — roughly the UBA defaults.
_FACULTY_MIX = (7, 11, 8, 6)
_UNDERGRADS_PER_FACULTY = 12
_GRADS_PER_FACULTY = 3
_PUBLICATIONS_PER_FACULTY = 7
_RESEARCH_GROUPS_PER_DEPARTMENT = 10
_PUBLICATION_NAME_POOL = 40

#: Landmark cardinalities of Tables 1 and 2 of the paper.
TABLE1_CARDINALITIES = (4, 66, 129, 257, 513)
TABLE2_CARDINALITIES = (5, 17, 135, 283, 521)


def generate_lubm(departments: int = 20, seed: int = 42) -> LubmDataset:
    """Generate a LUBM(1)-style dataset.

    With the default 20 departments the ABox holds roughly 103k triples, the
    size the paper reports for its LUBM(1) dataset.
    """
    rng = random.Random(seed)
    graph = Graph()
    dataset = LubmDataset(graph=graph, ontology=lubm_ontology())

    university = URI(_DATA_PREFIX + "University0")
    graph.add(Triple(university, RDF.type, LUBM.University))
    graph.add(Triple(university, LUBM.name, Literal("University0")))
    other_universities = [URI(f"http://www.University{i}.edu/University{i}") for i in range(1, 6)]
    for other in other_universities:
        graph.add(Triple(other, RDF.type, LUBM.University))
        graph.add(Triple(other, LUBM.name, Literal(other.local_name)))

    all_persons: List[URI] = []
    all_courses: List[URI] = []
    publication_name_counts: Dict[str, int] = {}

    for dept_index in range(departments):
        _generate_department(
            graph,
            rng,
            dept_index,
            university,
            other_universities,
            all_persons,
            all_courses,
            publication_name_counts,
        )

    _add_landmarks(graph, rng, dataset, university, all_persons, all_courses, publication_name_counts)
    return dataset


def _department_uri(dept_index: int) -> URI:
    return URI(f"http://www.Department{dept_index}.University0.edu/Department{dept_index}")


def _entity(dept_index: int, label: str) -> URI:
    return URI(f"http://www.Department{dept_index}.University0.edu/{label}")


def _generate_department(
    graph: Graph,
    rng: random.Random,
    dept_index: int,
    university: URI,
    other_universities: Sequence[URI],
    all_persons: List[URI],
    all_courses: List[URI],
    publication_name_counts: Dict[str, int],
) -> None:
    department = _department_uri(dept_index)
    graph.add(Triple(department, RDF.type, LUBM.Department))
    graph.add(Triple(department, LUBM.subOrganizationOf, university))
    graph.add(Triple(department, LUBM.name, Literal(f"Department{dept_index}")))

    for group_index in range(_RESEARCH_GROUPS_PER_DEPARTMENT):
        group = _entity(dept_index, f"ResearchGroup{group_index}")
        graph.add(Triple(group, RDF.type, LUBM.ResearchGroup))
        graph.add(Triple(group, LUBM.subOrganizationOf, department))

    faculty: List[URI] = []
    faculty_types = (
        [LUBM.FullProfessor] * _FACULTY_MIX[0]
        + [LUBM.AssociateProfessor] * _FACULTY_MIX[1]
        + [LUBM.AssistantProfessor] * _FACULTY_MIX[2]
        + [LUBM.Lecturer] * _FACULTY_MIX[3]
    )
    courses: List[URI] = []
    course_counter = 0
    for member_index, concept in enumerate(faculty_types):
        person = _entity(dept_index, f"{concept.local_name}{member_index}")
        faculty.append(person)
        all_persons.append(person)
        graph.add(Triple(person, RDF.type, concept))
        graph.add(Triple(person, LUBM.worksFor, department))
        graph.add(Triple(person, LUBM.name, Literal(f"{concept.local_name}{member_index}")))
        graph.add(
            Triple(person, LUBM.emailAddress, Literal(f"{concept.local_name}{member_index}@Department{dept_index}.University0.edu"))
        )
        graph.add(Triple(person, LUBM.telephone, Literal(f"xxx-xxx-{dept_index:02d}{member_index:02d}")))
        graph.add(Triple(person, LUBM.undergraduateDegreeFrom, rng.choice(other_universities)))
        graph.add(Triple(person, LUBM.mastersDegreeFrom, rng.choice(other_universities)))
        graph.add(Triple(person, LUBM.doctoralDegreeFrom, rng.choice(other_universities)))
        graph.add(Triple(person, LUBM.researchInterest, Literal(f"Research{rng.randrange(30)}")))
        for _ in range(2):
            is_graduate = rng.random() < 0.4
            course_label = ("GraduateCourse" if is_graduate else "Course") + str(course_counter)
            course = _entity(dept_index, course_label)
            course_counter += 1
            courses.append(course)
            all_courses.append(course)
            graph.add(Triple(course, RDF.type, LUBM.GraduateCourse if is_graduate else LUBM.Course))
            graph.add(Triple(course, LUBM.name, Literal(course_label)))
            graph.add(Triple(person, LUBM.teacherOf, course))

    # The department head is one of its full professors.
    head = faculty[0]
    graph.add(Triple(head, LUBM.headOf, department))

    professors = faculty[: _FACULTY_MIX[0] + _FACULTY_MIX[1] + _FACULTY_MIX[2]]

    # Undergraduate students.
    undergraduate_count = _UNDERGRADS_PER_FACULTY * len(faculty)
    for student_index in range(undergraduate_count):
        student = _entity(dept_index, f"UndergraduateStudent{student_index}")
        all_persons.append(student)
        graph.add(Triple(student, RDF.type, LUBM.UndergraduateStudent))
        graph.add(Triple(student, LUBM.memberOf, department))
        graph.add(Triple(student, LUBM.name, Literal(f"UndergraduateStudent{student_index}")))
        graph.add(
            Triple(student, LUBM.emailAddress, Literal(f"UndergraduateStudent{student_index}@Department{dept_index}.University0.edu"))
        )
        graph.add(Triple(student, LUBM.telephone, Literal(f"yyy-yyy-{student_index:04d}")))
        for course in rng.sample(courses, k=min(2, len(courses))):
            graph.add(Triple(student, LUBM.takesCourse, course))
        if student_index % 5 == 0:
            graph.add(Triple(student, LUBM.advisor, rng.choice(professors)))

    # Graduate students.
    graduate_count = _GRADS_PER_FACULTY * len(faculty)
    for student_index in range(graduate_count):
        student = _entity(dept_index, f"GraduateStudent{student_index}")
        all_persons.append(student)
        graph.add(Triple(student, RDF.type, LUBM.GraduateStudent))
        graph.add(Triple(student, LUBM.memberOf, department))
        graph.add(Triple(student, LUBM.name, Literal(f"GraduateStudent{student_index}")))
        graph.add(
            Triple(student, LUBM.emailAddress, Literal(f"GraduateStudent{student_index}@Department{dept_index}.University0.edu"))
        )
        graph.add(Triple(student, LUBM.undergraduateDegreeFrom, rng.choice(other_universities)))
        graph.add(Triple(student, LUBM.advisor, rng.choice(professors)))
        for course in rng.sample(courses, k=min(2, len(courses))):
            graph.add(Triple(student, LUBM.takesCourse, course))
        if student_index % 4 == 0:
            graph.add(Triple(student, RDF.type, LUBM.TeachingAssistant))
            graph.add(Triple(student, LUBM.teachingAssistantOf, rng.choice(courses)))

    # Publications.
    for faculty_index, person in enumerate(faculty):
        for pub_index in range(_PUBLICATIONS_PER_FACULTY):
            publication = _entity(dept_index, f"Publication{faculty_index}_{pub_index}")
            name_label = f"Publication{rng.randrange(_PUBLICATION_NAME_POOL)}"
            publication_name_counts[name_label] = publication_name_counts.get(name_label, 0) + 1
            graph.add(Triple(publication, RDF.type, LUBM.Publication))
            graph.add(Triple(publication, LUBM.name, Literal(name_label)))
            graph.add(Triple(publication, LUBM.publicationAuthor, person))
            if pub_index % 2 == 0 and faculty_index + 1 < len(faculty):
                graph.add(Triple(publication, LUBM.publicationAuthor, faculty[faculty_index + 1]))


def _add_landmarks(
    graph: Graph,
    rng: random.Random,
    dataset: LubmDataset,
    university: URI,
    all_persons: List[URI],
    all_courses: List[URI],
    publication_name_counts: Dict[str, int],
) -> None:
    """Create the entities whose cardinalities match Tables 1 and 2 exactly."""
    # Small configurations (one or two departments) may not hold enough
    # persons for the largest landmark cardinality (521); pad with extra
    # undergraduate students so the exact counts stay guaranteed.
    filler_index = 0
    while len(all_persons) < max(max(TABLE1_CARDINALITIES), max(TABLE2_CARDINALITIES)) + 8:
        person = URI(_DATA_PREFIX + f"LandmarkFillerStudent{filler_index}")
        filler_index += 1
        graph.add(Triple(person, RDF.type, LUBM.UndergraduateStudent))
        graph.add(Triple(person, LUBM.memberOf, _department_uri(0)))
        graph.add(Triple(person, LUBM.name, Literal(f"LandmarkFillerStudent{filler_index}")))
        all_persons.append(person)

    # ---- Table 1: (S, P, ?o) answer sizes 4 / 66 / 129 / 257 / 513 -------- #
    # S1: an undergraduate student taking exactly 4 courses.
    student = URI(_DATA_PREFIX + "LandmarkStudent0")
    graph.add(Triple(student, RDF.type, LUBM.UndergraduateStudent))
    graph.add(Triple(student, LUBM.memberOf, _department_uri(0)))
    graph.add(Triple(student, LUBM.name, Literal("LandmarkStudent0")))
    for course in all_courses[:4]:
        graph.add(Triple(student, LUBM.takesCourse, course))
    dataset.landmarks["student_takes_4"] = (student, 4)

    # S2-S5: proceedings publications with exactly 66/129/257/513 authors.
    for cardinality in TABLE1_CARDINALITIES[1:]:
        publication = URI(_DATA_PREFIX + f"Proceedings{cardinality}")
        graph.add(Triple(publication, RDF.type, LUBM.Publication))
        graph.add(Triple(publication, LUBM.name, Literal(f"Proceedings{cardinality}")))
        for author in rng.sample(all_persons, k=cardinality):
            graph.add(Triple(publication, LUBM.publicationAuthor, author))
        dataset.landmarks[f"pub_authors_{cardinality}"] = (publication, cardinality)

    # ---- Table 2: (?s, P, O) answer sizes 5 / 17 / 135 / 283 / 521 -------- #
    # S6: an assistant professor advising exactly 5 students.
    advisor = URI(_DATA_PREFIX + "LandmarkAdvisor")
    graph.add(Triple(advisor, RDF.type, LUBM.AssistantProfessor))
    graph.add(Triple(advisor, LUBM.worksFor, _department_uri(0)))
    graph.add(Triple(advisor, LUBM.name, Literal("LandmarkAdvisor")))
    for person in rng.sample(all_persons, k=5):
        graph.add(Triple(person, LUBM.advisor, advisor))
    dataset.landmarks["advisor_5"] = (advisor, 5)

    # S7: a course taken by exactly 17 students.
    course_17 = URI(_DATA_PREFIX + "LandmarkCourse17")
    graph.add(Triple(course_17, RDF.type, LUBM.Course))
    graph.add(Triple(course_17, LUBM.name, Literal("LandmarkCourse17")))
    for person in rng.sample(all_persons, k=17):
        graph.add(Triple(person, LUBM.takesCourse, course_17))
    dataset.landmarks["course_takers_17"] = (course_17, 17)

    # S8: a service department where exactly 135 persons work.
    services = URI(_DATA_PREFIX + "CentralServices")
    graph.add(Triple(services, RDF.type, LUBM.Department))
    graph.add(Triple(services, LUBM.subOrganizationOf, university))
    graph.add(Triple(services, LUBM.name, Literal("CentralServices")))
    for person in rng.sample(all_persons, k=135):
        graph.add(Triple(person, LUBM.worksFor, services))
    dataset.landmarks["dept_workers_135"] = (services, 135)

    # S9: a publication name shared by exactly 283 publications.
    shared_name = Literal("LandmarkSharedTitle")
    for copy_index in range(283):
        publication = URI(_DATA_PREFIX + f"SharedTitlePublication{copy_index}")
        graph.add(Triple(publication, RDF.type, LUBM.Publication))
        graph.add(Triple(publication, LUBM.name, shared_name))
        graph.add(Triple(publication, LUBM.publicationAuthor, rng.choice(all_persons)))
    dataset.literal_landmarks["pub_name_283"] = (shared_name, 283)

    # S10: a department with exactly 521 explicit members.
    big_department = URI(_DATA_PREFIX + "LandmarkDepartment521")
    graph.add(Triple(big_department, RDF.type, LUBM.Department))
    graph.add(Triple(big_department, LUBM.subOrganizationOf, university))
    graph.add(Triple(big_department, LUBM.name, Literal("LandmarkDepartment521")))
    members = rng.sample(all_persons, k=521)
    for person in members:
        graph.add(Triple(person, LUBM.memberOf, big_department))
    dataset.landmarks["dept_members_521"] = (big_department, 521)

    # M5/R6: a departmental publication with a handful of associate-professor authors.
    m5_publication = URI("http://www.Department0.University0.edu/Publication14")
    if not any(graph.triples(m5_publication, None, None)):
        graph.add(Triple(m5_publication, RDF.type, LUBM.Publication))
        graph.add(Triple(m5_publication, LUBM.name, Literal("Publication14")))
    associate = _entity(0, "AssociateProfessor7")
    graph.add(Triple(m5_publication, LUBM.publicationAuthor, associate))
    dataset.landmarks["m5_publication"] = (m5_publication, 1)


# --------------------------------------------------------------------------- #
# subsets
# --------------------------------------------------------------------------- #


def lubm_subsets(
    dataset: LubmDataset,
    sizes: Sequence[int] = (1000, 5000, 10000, 25000, 50000),
) -> Dict[str, Graph]:
    """Truncated subsets of the dataset, keyed ``"1K"``/``"5K"``/... like the paper.

    The full graph is returned under ``"100K"`` whatever its exact size.
    """
    subsets: Dict[str, Graph] = {}
    for size in sizes:
        label = f"{size // 1000}K"
        subsets[label] = dataset.graph.head(size)
    subsets["100K"] = dataset.graph
    return subsets
