"""Graph-instance stream processing.

The paper's target application is "the processing of a flow of RDF graphs
(sent from sensors or actuators) which are sharing a common topology...
continuously queried by a set of SPARQL queries... executed once per graph
instance" (Section 1).  :class:`GraphStreamProcessor` implements exactly that
loop: for every incoming graph instance it builds a fresh SuccinctEdge store
(dictionaries are derived from the stable, pre-encoded ontology), runs every
registered rule and forwards the non-empty answer sets as alerts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.edge.alerts import Alert, AlertSink, AnomalyRule
from repro.edge.device import EdgeDevice
from repro.rdf.graph import Graph
from repro.store.succinct_edge import SuccinctEdge


@dataclass
class StreamStatistics:
    """Counters accumulated over the processed stream."""

    instances_processed: int = 0
    triples_processed: int = 0
    alerts_raised: int = 0
    total_processing_ms: float = 0.0
    per_instance_ms: List[float] = field(default_factory=list)

    @property
    def mean_processing_ms(self) -> float:
        """Mean per-instance processing time."""
        if not self.per_instance_ms:
            return 0.0
        return sum(self.per_instance_ms) / len(self.per_instance_ms)


class GraphStreamProcessor:
    """Runs a fixed set of anomaly rules over a stream of graph instances."""

    def __init__(
        self,
        ontology: Graph,
        rules: Iterable[AnomalyRule],
        sink: Optional[AlertSink] = None,
        device: Optional[EdgeDevice] = None,
    ) -> None:
        self.ontology = ontology
        self.rules = list(rules)
        self.sink = sink if sink is not None else AlertSink()
        self.device = device
        self.statistics = StreamStatistics()

    # ------------------------------------------------------------------ #
    # processing
    # ------------------------------------------------------------------ #

    def process_instance(self, graph: Graph) -> List[Alert]:
        """Process one graph instance; return the alerts it raised."""
        started = time.perf_counter()
        store = SuccinctEdge.from_graph(graph, ontology=self.ontology)
        produced: List[Alert] = []
        instance_id = self.statistics.instances_processed
        for rule in self.rules:
            results = store.query(rule.query, reasoning=rule.requires_reasoning)
            produced.extend(self.sink.emit_result_set(rule, instance_id, results))
        elapsed_ms = (time.perf_counter() - started) * 1000.0

        self.statistics.instances_processed += 1
        self.statistics.triples_processed += len(graph)
        self.statistics.alerts_raised += len(produced)
        self.statistics.total_processing_ms += elapsed_ms
        self.statistics.per_instance_ms.append(elapsed_ms)
        if self.device is not None:
            self.device.charge_processing(elapsed_ms)
            if produced:
                self.device.charge_transmission(self.sink.estimated_payload_bytes())
        return produced

    def process_stream(self, graphs: Iterable[Graph]) -> StreamStatistics:
        """Process every graph of ``graphs``; return the accumulated statistics."""
        for graph in graphs:
            self.process_instance(graph)
        return self.statistics
