"""Triple-pattern evaluation over the SuccinctEdge layouts.

This module turns one triple pattern plus a partial solution binding into the
SDS operations of the paper's Section 5.2:

* ``(s, p, ?o)`` — Algorithm 3 (``ObjectTripleStore.objects_for`` /
  ``DatatypeTripleStore.literals_for``);
* ``(?s, p, o)`` — Algorithm 4 (``subjects_for``);
* ``(?s, p, ?o)`` — a property-run scan (``pairs_for_property``);
* ``rdf:type`` patterns — red-black-tree lookups in the RDFType store;
* reasoning — the constant predicate/concept is replaced by its LiteMat
  identifier interval, so concept and property hierarchies are answered
  without materialisation or UNION rewriting.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import Literal, Term, URI
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.bindings import Binding
from repro.store.succinct_edge import SuccinctEdge

#: A resolved pattern slot: a constant term, or the name of an unbound variable.
_Slot = Tuple[Optional[Term], Optional[str]]


class TriplePatternEvaluator:
    """Evaluates triple patterns against a :class:`SuccinctEdge` store."""

    def __init__(self, store: SuccinctEdge, reasoning: bool = True) -> None:
        self.store = store
        self.reasoning = reasoning

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def evaluate(self, pattern: TriplePattern, binding: Binding) -> Iterator[Binding]:
        """Yield the bindings extending ``binding`` that satisfy ``pattern``."""
        subject = self._resolve(pattern.subject, binding)
        predicate = self._resolve(pattern.predicate, binding)
        obj = self._resolve(pattern.object, binding)

        predicate_term, predicate_var = predicate
        if predicate_term is None:
            yield from self._evaluate_unbound_predicate(subject, predicate_var, obj, binding)
            return
        if not isinstance(predicate_term, URI):
            return
        if predicate_term == RDF_TYPE:
            yield from self._evaluate_rdf_type(subject, obj, binding)
            return
        yield from self._evaluate_property(predicate_term, subject, obj, binding)

    def evaluate_all(self, pattern: TriplePattern) -> List[Binding]:
        """Evaluate ``pattern`` with no initial binding (convenience for tests)."""
        return list(self.evaluate(pattern, Binding()))

    def evaluate_many(
        self, pattern: TriplePattern, bindings: Iterable[Binding]
    ) -> Iterator[Binding]:
        """Stream the bind-propagation join of ``bindings`` with ``pattern``.

        Pulls one upstream binding at a time, propagates it into the pattern
        (one batched SDS probe) and yields the extensions before touching the
        next upstream binding — the primitive the streaming pipeline's
        ``LIMIT``/``ASK`` early termination relies on: upstream bindings the
        consumer never asks about are never probed.
        """
        for binding in bindings:
            yield from self.evaluate(pattern, binding)

    def expand_frontier(self, forward_pids, inverse_pids, frontier_ids, frontier_literals):
        """One property-path BFS round against this evaluator's store.

        The sequential implementation of the hook the parallel / process /
        cluster executors override to scatter per-shard frontier expansion
        (see :func:`repro.query.paths.expand_frontier_local`).
        """
        from repro.query.paths import expand_frontier_local

        return expand_frontier_local(
            self.store, forward_pids, inverse_pids, frontier_ids, frontier_literals
        )

    def estimate_cardinality(self, pattern: TriplePattern) -> int:
        """Run-time cardinality estimate computed on the SDS structures.

        For a constant, non-``rdf:type`` predicate this is Algorithm 2
        (two ``select`` calls per layout); for ``rdf:type`` patterns it counts
        the red-black-tree range.
        """
        predicate = pattern.predicate
        if isinstance(predicate, Variable):
            return self.store.triple_count
        if pattern.is_rdf_type:
            if isinstance(pattern.object, URI):
                concept_id = self.store.concepts.try_locate(pattern.object)
                if concept_id is None:
                    return 0
                if self.reasoning:
                    low, high = self.store.concepts.interval(pattern.object)
                    return self.store.type_store.count_concept_interval(low, high)
                return self.store.type_store.count_concept(concept_id)
            return len(self.store.type_store)
        total = 0
        for property_id in self._candidate_property_ids(predicate):
            total += self.store.object_store.count_triples_with_property(property_id)
            total += self.store.datatype_store.count_triples_with_property(property_id)
        return total

    # ------------------------------------------------------------------ #
    # slot resolution
    # ------------------------------------------------------------------ #

    @staticmethod
    def _resolve(slot, binding: Binding) -> _Slot:
        if isinstance(slot, Variable):
            bound = binding.get(slot.name)
            if bound is None:
                return None, slot.name
            return bound, None
        return slot, None

    def _emit(
        self,
        binding: Binding,
        assignments: List[Tuple[Optional[str], Term]],
    ) -> Optional[Binding]:
        """Extend ``binding`` with variable assignments, checking consistency."""
        current = binding
        for name, value in assignments:
            if name is None:
                continue
            existing = current.get(name)
            if existing is not None:
                if existing != value:
                    return None
                continue
            current = current.extended(name, value)
        return current

    # ------------------------------------------------------------------ #
    # rdf:type patterns (RDFType store)
    # ------------------------------------------------------------------ #

    def _evaluate_rdf_type(
        self, subject: _Slot, obj: _Slot, binding: Binding
    ) -> Iterator[Binding]:
        subject_term, subject_var = subject
        object_term, object_var = obj
        store = self.store

        if object_term is not None:
            if not isinstance(object_term, URI):
                return
            concept_id = store.concepts.try_locate(object_term)
            if concept_id is None:
                return
            if subject_term is not None:
                # Fully bound: a membership check through the SO access path.
                subject_id = store.instances.try_locate(subject_term)
                if subject_id is None:
                    return
                stored_concepts = store.type_store.concepts_of(subject_id)
                if self.reasoning:
                    low, high = store.concepts.interval(object_term)
                    matched = any(low <= stored < high for stored in stored_concepts)
                else:
                    matched = concept_id in stored_concepts
                if matched:
                    extended = self._emit(binding, [])
                    if extended is not None:
                        yield extended
                return
            if self.reasoning:
                low, high = store.concepts.interval(object_term)
                subjects = store.type_store.subjects_of_interval(low, high)
            else:
                subjects = store.type_store.subjects_of(concept_id)
            # ``subject_var`` is guaranteed unbound here (a bound variable
            # resolves to a term), so each result extends the binding directly.
            extract = store.instances.extract
            extend = binding.extended
            for subject_id in subjects:
                yield extend(subject_var, extract(subject_id))
            return

        # Object is an unbound variable: enumerate concepts.
        if subject_term is not None:
            subject_id = store.instances.try_locate(subject_term)
            if subject_id is None:
                return
            extend = binding.extended
            for concept in self._concepts_of_subject(subject_id):
                yield extend(object_var, concept)
            return

        extract = store.instances.extract
        base = binding.as_dict()
        adopt = Binding._adopt
        diagonal = subject_var == object_var
        for subject_id, concept_id in store.type_store.iter_triples():
            subject_value = extract(subject_id)
            for concept in self._expand_concept(concept_id):
                if diagonal:
                    if subject_value == concept:
                        yield binding.extended(subject_var, subject_value)
                    continue
                values = dict(base)
                values[subject_var] = subject_value
                values[object_var] = concept
                yield adopt(values)

    def _concepts_of_subject(self, subject_id: int) -> List[URI]:
        concepts: List[URI] = []
        seen = set()
        for concept_id in self.store.type_store.concepts_of(subject_id):
            for concept in self._expand_concept(concept_id):
                if concept not in seen:
                    seen.add(concept)
                    concepts.append(concept)
        return concepts

    def _expand_concept(self, concept_id: int) -> List[URI]:
        """The stored concept, plus its super-concepts when reasoning is on."""
        concept = self.store.concepts.extract(concept_id)
        if not isinstance(concept, URI):
            return []
        if not self.reasoning:
            return [concept]
        return self.store.schema.superconcepts(concept, include_self=True)

    # ------------------------------------------------------------------ #
    # object / datatype property patterns (PSO layouts)
    # ------------------------------------------------------------------ #

    def _candidate_property_ids(self, predicate: URI) -> List[int]:
        """Property identifiers to probe for ``predicate``.

        Without reasoning this is the single identifier of the predicate.
        With reasoning it is every *stored* property whose identifier falls in
        the predicate's LiteMat interval — obtained with one wavelet-tree
        symbol-range probe per layout, the paper's interval optimization.
        ``properties_in_interval`` is a store-level method so that the same
        pattern evaluation works over both a pure succinct base and the
        base+delta overlay view (``repro.store.delta``).
        """
        store = self.store
        property_id = store.properties.try_locate(predicate)
        if not self.reasoning:
            return [] if property_id is None else [property_id]
        if predicate not in store.properties:
            return []
        low, high = store.properties.interval(predicate)
        present = set(store.object_store.properties_in_interval(low, high))
        present.update(store.datatype_store.properties_in_interval(low, high))
        return sorted(present)

    def _evaluate_property(
        self,
        predicate: URI,
        subject: _Slot,
        obj: _Slot,
        binding: Binding,
        expand: bool = True,
    ) -> Iterator[Binding]:
        subject_term, subject_var = subject
        object_term, object_var = obj
        store = self.store

        subject_id: Optional[int] = None
        if subject_term is not None:
            if isinstance(subject_term, Literal):
                return
            subject_id = store.instances.try_locate(subject_term)
            if subject_id is None:
                return

        if expand:
            property_ids = self._candidate_property_ids(predicate)
        else:
            single = store.properties.try_locate(predicate)
            property_ids = [] if single is None else [single]
        extract = store.instances.extract
        extend = binding.extended
        for property_id in property_ids:
            if subject_id is not None and object_term is not None:
                if self._contains(property_id, subject_id, object_term):
                    extended = self._emit(binding, [])
                    if extended is not None:
                        yield extended
                continue
            if subject_id is not None:
                # (s, p, ?o): Algorithm 3 on the object layout, plus the flat
                # literal run of the datatype layout.  Each store call
                # materialises its whole answer run in batched kernel calls;
                # ``object_var`` is guaranteed unbound (a bound variable
                # would have been resolved to a term), so the bindings are
                # extended directly.
                for object_id in store.object_store.objects_for(subject_id, property_id):
                    yield extend(object_var, extract(object_id))
                for literal in store.datatype_store.literals_for(subject_id, property_id):
                    yield extend(object_var, literal)
                continue
            if object_term is not None:
                # (?s, p, o): Algorithm 4, one batched reverse lookup.
                if isinstance(object_term, Literal):
                    found_subjects = store.datatype_store.subjects_for(property_id, object_term)
                else:
                    object_id = store.instances.try_locate(object_term)
                    if object_id is None:
                        continue
                    found_subjects = store.object_store.subjects_for(property_id, object_id)
                for found_subject in found_subjects:
                    yield extend(subject_var, extract(found_subject))
                continue
            # (?s, p, ?o): materialise the property run of both layouts with
            # one batched scan each.  The same variable may fill both slots
            # (``?x p ?x``), in which case only diagonal pairs match.
            diagonal = subject_var == object_var
            base = binding.as_dict()
            adopt = Binding._adopt
            for found_subject, found_object in store.object_store.pairs_for_property(property_id):
                if diagonal:
                    if found_subject == found_object:
                        yield extend(subject_var, extract(found_subject))
                    continue
                values = dict(base)
                values[subject_var] = extract(found_subject)
                values[object_var] = extract(found_object)
                yield adopt(values)
            for found_subject, literal in store.datatype_store.pairs_for_property(property_id):
                if diagonal:
                    continue  # a subject URI never equals a literal
                values = dict(base)
                values[subject_var] = extract(found_subject)
                values[object_var] = literal
                yield adopt(values)

    def _contains(self, property_id: int, subject_id: int, object_term: Term) -> bool:
        if isinstance(object_term, Literal):
            return object_term in self.store.datatype_store.literals_for(subject_id, property_id)
        object_id = self.store.instances.try_locate(object_term)
        if object_id is None:
            return False
        return self.store.object_store.contains(subject_id, property_id, object_id)

    # ------------------------------------------------------------------ #
    # unbound predicate (rare in the paper's workloads)
    # ------------------------------------------------------------------ #

    def _evaluate_unbound_predicate(
        self,
        subject: _Slot,
        predicate_var: Optional[str],
        obj: _Slot,
        binding: Binding,
    ) -> Iterator[Binding]:
        store = self.store
        # rdf:type triples first.
        for extended in self._evaluate_rdf_type(subject, obj, binding):
            result = self._emit(extended, [(predicate_var, RDF_TYPE)])
            if result is not None:
                yield result
        # Every stored property across both layouts.
        property_ids = sorted(
            set(store.object_store.properties) | set(store.datatype_store.properties)
        )
        for property_id in property_ids:
            predicate = store.properties.extract(property_id)
            if not isinstance(predicate, URI):
                continue
            # The variable binds to the *stored* predicate, so no hierarchy
            # expansion happens here (each stored property matches itself).
            for extended in self._evaluate_property(predicate, subject, obj, binding, expand=False):
                result = self._emit(extended, [(predicate_var, predicate)])
                if result is not None:
                    yield result
