"""Tests for the join-aware statistics layer and the cardinality estimator.

Covers the build-time profiling pass (per-property distinct counts,
characteristic sets), the incremental maintenance hooks driven by delta
writes, the cached fully-unbound fallback (its invalidation rides the same
version counter), and the chained-selectivity estimates of
:class:`~repro.query.cardinality.CardinalityEstimator`.
"""

from __future__ import annotations

import pytest

from repro.dictionary.statistics import profile_triples
from repro.query.cardinality import CardinalityEstimator
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Literal, Triple, URI
from repro.sparql.parser import parse_query
from repro.store.succinct_edge import SuccinctEdge
from repro.store.updatable import UpdatableSuccinctEdge
from tests.conftest import build_toy_data, build_toy_ontology

EX = Namespace("http://example.org/")


def patterns_of(query_text: str):
    return list(parse_query(query_text).triple_patterns)


@pytest.fixture()
def live_toy_store() -> UpdatableSuccinctEdge:
    """A writable toy store with *fresh* dictionaries and statistics.

    The session-scoped ``toy_store`` fixture shares its statistics across
    the whole suite; the write-path tests here need their own copy.
    """
    base = SuccinctEdge.from_graph(build_toy_data(), ontology=build_toy_ontology())
    return UpdatableSuccinctEdge(base)


class TestProfileTriples:
    def test_counts_and_distincts(self):
        object_triples = [(7, 1, 2), (7, 1, 3), (7, 2, 3)]
        datatype_triples = [(9, 1, Literal("a")), (9, 2, Literal("a"))]
        profiles, char_sets = profile_triples(object_triples, datatype_triples, [])
        assert profiles[7].triples == 3
        assert profiles[7].distinct_subjects == 2
        assert profiles[7].distinct_objects == 2
        assert profiles[9].triples == 2
        assert profiles[9].distinct_subjects == 2
        assert profiles[9].distinct_objects == 1
        # Subjects 1 and 2 share the same {7, 9} signature.
        signature = frozenset({("p", 7), ("p", 9)})
        assert char_sets[signature].count == 2
        assert char_sets[signature].triples[("p", 7)] == 3

    def test_type_markers(self):
        profiles, char_sets = profile_triples([(7, 1, 2)], [], [(1, 42)])
        assert ("t", 42) in char_sets[frozenset({("p", 7), ("t", 42)})].triples
        assert 42 not in profiles  # concepts do not get property profiles


class TestBuilderProfiles:
    def test_store_built_from_graph_carries_profiles(self, toy_store):
        statistics = toy_store.statistics
        assert statistics.has_profiles
        member_of = statistics.properties.try_locate(EX.memberOf)
        profile = statistics.property_profile(member_of)
        assert profile is not None and profile.triples > 0
        assert profile.distinct_subjects <= profile.triples

    def test_star_cardinality_supersets(self, toy_store):
        statistics = toy_store.statistics
        member_of = statistics.properties.try_locate(EX.memberOf)
        name = statistics.properties.try_locate(EX.name)
        answer = statistics.star_cardinality([("p", member_of), ("p", name)])
        assert answer is not None
        subjects, rows = answer
        assert subjects >= 1
        assert rows >= subjects  # each qualifying subject yields >= 1 row


class TestIncrementalMaintenance:
    def test_insert_updates_profile_and_version(self, live_toy_store):
        live = live_toy_store
        statistics = live.statistics
        member_of = statistics.properties.try_locate(EX.memberOf)
        before = statistics.property_profile(member_of).triples
        version = statistics.version
        assert live.insert(Triple(EX.newbie, EX.memberOf, EX.dept1))
        assert statistics.property_profile(member_of).triples == before + 1
        assert statistics.version > version

    def test_delete_decrements(self, live_toy_store):
        live = live_toy_store
        statistics = live.statistics
        member_of = statistics.properties.try_locate(EX.memberOf)
        assert live.insert(Triple(EX.newbie, EX.memberOf, EX.dept1))
        count = statistics.property_profile(member_of).triples
        assert live.delete(Triple(EX.newbie, EX.memberOf, EX.dept1))
        assert statistics.property_profile(member_of).triples == count - 1

    def test_live_born_property_profile(self, live_toy_store):
        live = live_toy_store
        statistics = live.statistics
        assert live.insert(Triple(EX.a, EX.neverSeenBefore, EX.b))
        property_id = statistics.properties.try_locate(EX.neverSeenBefore)
        profile = statistics.property_profile(property_id)
        assert profile.triples == 1
        assert profile.build_triples == 0
        # Every triple of a live-born property may carry a fresh subject.
        assert profile.current_distinct_subjects() == 1

    def test_scaled_distincts_grow_with_delta(self, live_toy_store):
        live = live_toy_store
        statistics = live.statistics
        member_of = statistics.properties.try_locate(EX.memberOf)
        profile = statistics.property_profile(member_of)
        build_distinct = profile.current_distinct_subjects()
        for index in range(profile.build_triples * 2):
            assert live.insert(
                Triple(URI(f"http://example.org/fresh{index}"), EX.memberOf, EX.dept1)
            )
        assert profile.current_distinct_subjects() > build_distinct


class TestUnboundFallbackCache:
    def test_cached_and_invalidated_on_write(self, live_toy_store):
        live = live_toy_store
        statistics = live.statistics
        first = statistics.triple_pattern_cardinality(None, None, None, is_rdf_type=False)
        # Second call is served from the version-keyed cache.
        assert statistics._unbound_mass_cache is not None
        assert statistics.triple_pattern_cardinality(None, None, None, False) == first
        assert live.insert(Triple(EX.x1, EX.memberOf, EX.dept1))
        assert statistics._unbound_mass_cache is None  # write invalidated it
        after = statistics.triple_pattern_cardinality(None, None, None, False)
        assert after == first + 1


class TestCardinalityEstimator:
    def test_scan_estimate_matches_profile(self, toy_store):
        estimator = CardinalityEstimator(toy_store.statistics, reasoning=False)
        [pattern] = patterns_of(
            "SELECT * WHERE { ?s <http://example.org/memberOf> ?o }"
        )
        estimate = estimator.estimate_pattern(pattern)
        member_of = toy_store.statistics.properties.try_locate(EX.memberOf)
        assert estimate.rows == toy_store.statistics.property_profile(member_of).triples

    def test_bound_subject_divides_by_distinct_subjects(self, toy_store):
        estimator = CardinalityEstimator(toy_store.statistics, reasoning=False)
        scan, probe = patterns_of(
            "SELECT * WHERE { ?s <http://example.org/memberOf> ?o . "
            "<http://example.org/alice> <http://example.org/memberOf> ?o2 }"
        )
        scan_estimate = estimator.estimate_pattern(scan)
        probe_estimate = estimator.estimate_pattern(probe)
        assert 0 < probe_estimate.rows <= scan_estimate.rows

    def test_unknown_uri_constant_estimates_zero(self, toy_store):
        estimator = CardinalityEstimator(toy_store.statistics, reasoning=False)
        [pattern] = patterns_of(
            "SELECT * WHERE { ?s <http://example.org/memberOf> <http://example.org/nowhere> }"
        )
        assert estimator.estimate_pattern(pattern).rows == 0.0

    def test_join_chains_selectivity(self, toy_store):
        estimator = CardinalityEstimator(toy_store.statistics, reasoning=True)
        first, second = patterns_of(
            "SELECT * WHERE { ?x <http://example.org/memberOf> ?d . "
            "?x <http://example.org/name> ?n }"
        )
        state = estimator.initial_state(first)
        joined, shared = estimator.join(state, second)
        assert shared == ["x"]
        # The chained estimate stays below the cross product.
        cross = state.rows * estimator.estimate_pattern(second).rows
        assert joined.rows <= cross

    def test_type_anchored_star_uses_characteristic_sets(self, toy_store):
        # The canonical star: a bound-concept rdf:type pattern anchors the
        # characteristic-set estimate (its ("t", concept) marker encodes the
        # constant exactly).
        estimator = CardinalityEstimator(toy_store.statistics, reasoning=False)
        type_p, name_p = patterns_of(
            "SELECT * WHERE { ?x a <http://example.org/FullProfessor> . "
            "?x <http://example.org/name> ?n }"
        )
        assert estimator.estimate_pattern(type_p).marker is not None
        answer = estimator.star_answer("x", [type_p, name_p])
        assert answer is not None
        subjects, rows = answer
        assert subjects == 1.0  # exactly bob is a FullProfessor with a name
        assert rows == 1.0

    def test_repeated_predicate_star_is_rejected(self, toy_store):
        estimator = CardinalityEstimator(toy_store.statistics, reasoning=False)
        p1, p2 = patterns_of(
            "SELECT * WHERE { ?s <http://example.org/advisor> ?a . "
            "?s <http://example.org/advisor> ?b }"
        )
        # The set summary would deduplicate the repeated marker and
        # underestimate; the estimator must decline instead.
        assert estimator.star_answer("s", [p1, p2]) is None

    def test_cartesian_join_multiplies(self, toy_store):
        estimator = CardinalityEstimator(toy_store.statistics, reasoning=True)
        first, second = patterns_of(
            "SELECT * WHERE { ?x <http://example.org/memberOf> ?d . "
            "?y <http://example.org/name> ?n }"
        )
        state = estimator.initial_state(first)
        joined, shared = estimator.join(state, second)
        assert shared == []
        assert joined.rows == state.rows * estimator.estimate_pattern(second).rows

    def test_without_statistics_falls_back(self):
        estimator = CardinalityEstimator(None)
        [pattern] = patterns_of("SELECT * WHERE { ?s <http://example.org/p> ?o }")
        assert estimator.estimate_pattern(pattern).rows > 0

    def test_estimates_invalidate_on_write(self, live_toy_store):
        live = live_toy_store
        estimator = CardinalityEstimator(live.statistics, reasoning=False)
        [pattern] = patterns_of(
            "SELECT * WHERE { ?s <http://example.org/memberOf> ?o }"
        )
        before = estimator.estimate_pattern(pattern).rows
        assert live.insert(Triple(EX.someone, EX.memberOf, EX.dept1))
        assert estimator.estimate_pattern(pattern).rows == before + 1
