"""Plan-snapshot regression suite: pinned ``explain()`` output per query.

Pins the full pipeline plan (cost-based planner, reasoning on) of all 26
paper queries plus the A1-A6 analytics additions against a checked-in
snapshot, so any PR that changes a plan — intentionally or not — shows the
diff in review instead of silently shifting kernel-call counts.

Regenerate after an intentional planner change with::

    REPRO_UPDATE_PLAN_SNAPSHOTS=1 python -m pytest tests/test_plan_snapshots.py -q

The snapshot is deterministic: the LUBM generator is seeded, plans are pure
functions of (query, statistics), and cost renderings are rounded.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.query.engine import QueryEngine

SNAPSHOT_PATH = pathlib.Path(__file__).parent / "plan_snapshots" / "paper_queries_explain.txt"
_UPDATE = os.environ.get("REPRO_UPDATE_PLAN_SNAPSHOTS", "") not in ("", "0")


def render_snapshot(store, catalog) -> str:
    engine = QueryEngine(store, reasoning=True, planner="cost")
    sections = []
    for query in catalog.extended_queries():
        sections.append(f"### {query.identifier}\n{engine.explain(query.sparql)}\n")
    return "\n".join(sections)


def parse_snapshot(text: str) -> dict:
    sections = {}
    current = None
    lines: list = []
    for line in text.splitlines():
        if line.startswith("### "):
            if current is not None:
                sections[current] = "\n".join(lines).strip()
            current = line[4:].strip()
            lines = []
        else:
            lines.append(line)
    if current is not None:
        sections[current] = "\n".join(lines).strip()
    return sections


@pytest.fixture(scope="module")
def rendered(small_lubm_store, small_lubm_catalog) -> str:
    return render_snapshot(small_lubm_store, small_lubm_catalog)


def test_snapshot_file_exists_or_is_written(rendered):
    if _UPDATE or not SNAPSHOT_PATH.exists():
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(rendered)
    assert SNAPSHOT_PATH.exists()


def test_every_query_plan_matches_snapshot(rendered, small_lubm_catalog):
    if not SNAPSHOT_PATH.exists():  # first run just wrote it
        pytest.skip("snapshot file was just created")
    expected = parse_snapshot(SNAPSHOT_PATH.read_text())
    actual = parse_snapshot(rendered)
    identifiers = [q.identifier for q in small_lubm_catalog.extended_queries()]
    assert set(expected) == set(actual), "snapshot query set drifted — regenerate"
    for identifier in identifiers:
        assert actual[identifier] == expected[identifier], (
            f"plan for {identifier} changed:\n"
            f"--- pinned ---\n{expected[identifier]}\n"
            f"--- current ---\n{actual[identifier]}\n"
            "If intentional, regenerate with REPRO_UPDATE_PLAN_SNAPSHOTS=1."
        )


def test_snapshots_cover_all_32_queries():
    expected = parse_snapshot(SNAPSHOT_PATH.read_text())
    assert len(expected) == 32  # S1-S15, M1-M5, R1-R6, A1-A6


def test_plans_name_their_planner():
    text = SNAPSHOT_PATH.read_text()
    assert "plan [cost-dp]" in text
