"""Sharded store: subject-interval partitioning across N SuccinctEdge shards.

The scale-out layer of the serving stack (``docs/operations.md``).  A
:class:`ShardedStore` range-partitions the encoded triples by **subject
identifier interval** across N shards.  Each shard is a complete
:class:`~repro.store.succinct_edge.SuccinctEdge` (or, with ``updatable=True``,
an :class:`~repro.store.updatable.UpdatableSuccinctEdge` carrying its own
delta overlay), all sharing one set of dictionaries, one ontology schema and
one statistics object — exactly the deployment the paper sketches, where the
central server broadcasts the LiteMat encodings so every edge store assigns
identical identifiers.

Why subject intervals (and not hashing): the base layouts enumerate every
property run *ordered by subject*, so disjoint ascending subject intervals
make the merged enumeration a plain concatenation in shard order — no k-way
heap merge, and results stay **byte-identical** to a monolithic store:

* :class:`ShardedObjectStore` / :class:`ShardedDatatypeStore` /
  :class:`ShardedTypeStore` are read views implementing the exact store API
  (the methods :mod:`repro.query.tp_eval` and ``SuccinctEdge.match`` call);
  per-shard answers are concatenated in shard order (PSO / PS / SO
  preserved), and subject-bound probes are **pruned** to the single owning
  shard;
* writes route by subject to the owning shard (never-seen subjects always
  receive fresh, larger identifiers, which by construction belong to the
  last shard's open interval);
* epoch accounting aggregates across shards, so the serving layer's result
  cache (``repro.serve``) invalidates on any shard's write.

The differential bar (``tests/test_sharding_differential.py``): all 26 paper
queries + A1-A6 byte-identical to the monolithic store, including with a
live delta on one shard.
"""

from __future__ import annotations

import json
import os
import threading
from bisect import bisect_right
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Triple
from repro.store.datatype_store import DatatypeTripleStore, EncodedDatatypeTriple
from repro.store.delta import CompactionPolicy
from repro.store.rdftype_store import EncodedTypeTriple, RDFTypeStore
from repro.store.succinct_edge import SuccinctEdge
from repro.store.triple_store import EncodedTriple, ObjectTripleStore
from repro.store.updatable import CompactionReport, UpdatableSuccinctEdge


class SubjectPartitioner:
    """Maps a subject identifier to the shard owning its interval.

    ``boundaries`` holds the N-1 interior split points of N ascending,
    disjoint, jointly exhaustive intervals: shard ``i`` owns
    ``[boundaries[i-1], boundaries[i])`` with the first interval starting at
    0 and the last one open-ended.  The open last interval is what makes
    live inserts of never-seen subjects safe: fresh dictionary identifiers
    are always larger than every identifier observed at build time, so they
    belong to the last shard without any boundary maintenance.
    """

    def __init__(self, boundaries: Sequence[int]) -> None:
        self.boundaries = list(boundaries)
        if any(b >= c for b, c in zip(self.boundaries, self.boundaries[1:])):
            raise ValueError("shard boundaries must be strictly ascending")

    @property
    def shard_count(self) -> int:
        return len(self.boundaries) + 1

    def shard_of(self, subject_id: int) -> int:
        """Index of the shard owning ``subject_id``."""
        return bisect_right(self.boundaries, subject_id)

    def interval(self, shard_index: int) -> Tuple[int, Optional[int]]:
        """``[low, high)`` of one shard; the last shard's high is ``None`` (open)."""
        low = 0 if shard_index == 0 else self.boundaries[shard_index - 1]
        high = (
            None if shard_index == len(self.boundaries) else self.boundaries[shard_index]
        )
        return low, high

    @classmethod
    def balanced(cls, subject_ids: Sequence[int], shards: int) -> "SubjectPartitioner":
        """Quantile split of the observed distinct subjects into ``shards`` parts.

        Splitting on observed subjects (rather than the raw identifier space)
        keeps shard triple counts comparable even when LiteMat leaves gaps in
        the identifier space.
        """
        if shards < 1:
            raise ValueError("need at least one shard")
        distinct = sorted(set(subject_ids))
        boundaries: List[int] = []
        for index in range(1, shards):
            position = (index * len(distinct)) // shards
            if position >= len(distinct):
                break
            boundary = distinct[position]
            if not boundaries or boundary > boundaries[-1]:
                boundaries.append(boundary)
        return cls(boundaries)

    def __repr__(self) -> str:
        return f"SubjectPartitioner({self.shard_count} shards, boundaries={self.boundaries})"


# --------------------------------------------------------------------------- #
# sharded layout read views
# --------------------------------------------------------------------------- #


class _ShardedLayoutView:
    """Shared fan-out arithmetic over one layout of every shard.

    ``self.parts`` resolves the per-shard layout objects in shard
    (= ascending subject interval) order **at access time** — an updatable
    shard's compaction swaps its layout attributes for fresh objects
    (``UpdatableSuccinctEdge._install``), so capturing them once at
    construction would leave the facade reading stale pre-compaction
    overlays.  The resolved objects may be pure succinct layouts or the
    delta overlay views of a live shard — both expose the same API, so the
    sharded view composes with either.
    """

    #: Which layout attribute of each shard this view fans out over.
    _attribute = "object_store"

    def __init__(self, shards: Sequence[object], partitioner: SubjectPartitioner) -> None:
        self.shards = list(shards)
        self.partitioner = partitioner

    @property
    def parts(self) -> List[object]:
        """The current per-shard layout objects, in shard order."""
        attribute = self._attribute
        return [getattr(shard, attribute) for shard in self.shards]

    def _owner(self, subject_id: int):
        return getattr(self.shards[self.partitioner.shard_of(subject_id)], self._attribute)

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(part)) for part in self.parts)
        return f"{type(self).__name__}({len(self)} triples across [{sizes}])"

    # property-level accessors (identical across the two PSO-style layouts) #

    @property
    def properties(self) -> List[int]:
        merged = set()
        for part in self.parts:
            merged.update(part.properties)
        return sorted(merged)

    def has_property(self, property_id: int) -> bool:
        return any(part.has_property(property_id) for part in self.parts)

    def properties_in_interval(self, low: int, high: int) -> List[int]:
        merged = set()
        for part in self.parts:
            merged.update(part.properties_in_interval(low, high))
        return sorted(merged)

    def count_triples_with_property(self, property_id: int) -> int:
        return sum(part.count_triples_with_property(property_id) for part in self.parts)

    def count_subjects_with_property(self, property_id: int) -> int:
        # Shards hold disjoint subject intervals, so per-shard distinct
        # subject counts add up exactly.
        return sum(part.count_subjects_with_property(property_id) for part in self.parts)

    def size_in_bytes(self) -> int:
        return sum(part.size_in_bytes() for part in self.parts)


class ShardedObjectStore(_ShardedLayoutView):
    """Fan-out read view over the object-property layout of every shard.

    Subject-bound probes go to the single owning shard; subject-enumerating
    scans concatenate the per-shard answers in shard order, which *is* PSO
    order because the shards partition the subject space into ascending
    intervals.
    """

    _attribute = "object_store"

    def objects_for(self, subject_id: int, property_id: int) -> List[int]:
        return self._owner(subject_id).objects_for(subject_id, property_id)

    def subjects_for(self, property_id: int, object_id: int) -> List[int]:
        results: List[int] = []
        for part in self.parts:
            results.extend(part.subjects_for(property_id, object_id))
        return results

    def contains(self, subject_id: int, property_id: int, object_id: int) -> bool:
        return self._owner(subject_id).contains(subject_id, property_id, object_id)

    def pairs_for_property(self, property_id: int) -> Iterator[Tuple[int, int]]:
        for part in self.parts:
            yield from part.pairs_for_property(property_id)

    def pairs_for_property_interval(
        self, property_low: int, property_high: int
    ) -> Iterator[EncodedTriple]:
        # Property-major (then shard-minor) to mirror the monolithic order.
        for property_id in self.properties_in_interval(property_low, property_high):
            for subject_id, object_id in self.pairs_for_property(property_id):
                yield property_id, subject_id, object_id

    def iter_triples(self) -> Iterator[EncodedTriple]:
        for property_id in self.properties:
            for subject_id, object_id in self.pairs_for_property(property_id):
                yield property_id, subject_id, object_id


class ShardedDatatypeStore(_ShardedLayoutView):
    """Fan-out read view over the datatype-property layout of every shard.

    All triples of one ``(property, subject)`` pair live in one shard, so the
    within-pair literal insertion order of the base layouts is preserved.
    """

    _attribute = "datatype_store"

    def literals_for(self, subject_id: int, property_id: int) -> List[Literal]:
        return self._owner(subject_id).literals_for(subject_id, property_id)

    def subjects_for(self, property_id: int, literal: Literal) -> List[int]:
        results: List[int] = []
        for part in self.parts:
            results.extend(part.subjects_for(property_id, literal))
        return results

    def pairs_for_property(self, property_id: int) -> Iterator[Tuple[int, Literal]]:
        for part in self.parts:
            yield from part.pairs_for_property(property_id)

    def pairs_for_property_interval(
        self, property_low: int, property_high: int
    ) -> Iterator[Tuple[int, int, Literal]]:
        for property_id in self.properties_in_interval(property_low, property_high):
            for subject_id, literal in self.pairs_for_property(property_id):
                yield property_id, subject_id, literal

    def iter_triples(self) -> Iterator[EncodedDatatypeTriple]:
        for property_id in self.properties:
            for subject_id, literal in self.pairs_for_property(property_id):
                yield property_id, subject_id, literal


class ShardedTypeStore:
    """Fan-out read view over the ``rdf:type`` layout of every shard.

    SO-ordered enumeration concatenates shards (disjoint ascending subject
    intervals); concept-keyed lookups gather per-shard sorted subject lists,
    whose concatenation is again globally sorted for the same reason.
    Like the PSO views, the per-shard layouts are resolved at access time so
    shard compaction swaps stay visible.
    """

    def __init__(self, shards: Sequence[object], partitioner: SubjectPartitioner) -> None:
        self.shards = list(shards)
        self.partitioner = partitioner

    @property
    def parts(self) -> List[object]:
        """The current per-shard type layouts, in shard order."""
        return [shard.type_store for shard in self.shards]

    def _owner(self, subject_id: int):
        return self.shards[self.partitioner.shard_of(subject_id)].type_store

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(part)) for part in self.parts)
        return f"ShardedTypeStore({len(self)} triples across [{sizes}])"

    def contains(self, subject_id: int, concept_id: int) -> bool:
        return self._owner(subject_id).contains(subject_id, concept_id)

    def subjects_of(self, concept_id: int) -> List[int]:
        results: List[int] = []
        for part in self.parts:
            results.extend(part.subjects_of(concept_id))
        return results

    def subjects_of_interval(self, concept_low: int, concept_high: int) -> List[int]:
        results: List[int] = []
        for part in self.parts:
            results.extend(part.subjects_of_interval(concept_low, concept_high))
        return results

    def concepts_of(self, subject_id: int) -> List[int]:
        return self._owner(subject_id).concepts_of(subject_id)

    def count_concept(self, concept_id: int) -> int:
        return sum(part.count_concept(concept_id) for part in self.parts)

    def count_concept_interval(self, concept_low: int, concept_high: int) -> int:
        return sum(part.count_concept_interval(concept_low, concept_high) for part in self.parts)

    def iter_triples(self) -> Iterator[EncodedTypeTriple]:
        for part in self.parts:
            yield from part.iter_triples()

    def size_in_bytes(self) -> int:
        return sum(part.size_in_bytes() for part in self.parts)


# --------------------------------------------------------------------------- #
# the sharded facade
# --------------------------------------------------------------------------- #


class ShardedStore(SuccinctEdge):
    """N subject-interval shards behind the exact :class:`SuccinctEdge` API.

    Because the three layout attributes are the fan-out views above, every
    existing consumer — ``match()``, :mod:`repro.query.tp_eval`, the
    streaming pipeline, the optimizer's statistics — works unchanged, and
    :class:`~repro.query.parallel.ParallelQueryEngine` can additionally
    scatter per-shard work across a thread pool.

    Build with :meth:`from_graph` (encode once, partition the encoded
    triples) or :meth:`from_store` (partition an already-built monolithic
    store; the original store is left untouched and shares its
    dictionaries).  With ``updatable=True`` every shard carries its own
    delta overlay and the facade grows the write path (:meth:`insert` /
    :meth:`delete` route by subject, :meth:`compact` fans out).
    """

    def __init__(
        self,
        shards: Sequence[SuccinctEdge],
        partitioner: SubjectPartitioner,
    ) -> None:
        if not shards:
            raise ValueError("a ShardedStore needs at least one shard")
        if len(shards) != partitioner.shard_count:
            raise ValueError(
                f"partitioner describes {partitioner.shard_count} shards, got {len(shards)}"
            )
        first = shards[0]
        self.shards = list(shards)
        self.partitioner = partitioner
        # Writes to *different* shards would otherwise race on the shared
        # dictionaries (their add()/add_overflow() are check-then-act on one
        # _next_id) — the facade restores the single-writer guarantee the
        # monolithic store's write lock provided.  Per-shard locks still
        # protect each shard's compaction swap.
        self._write_lock = threading.Lock()
        # Facade-level term-level write log plus on-disk image bookkeeping,
        # the sharded analogue of UpdatableSuccinctEdge._delta_log: the
        # process execution backend ships (directory, generation, log) to
        # its workers so live writes stay visible over mapped shard images.
        self._delta_log: List[Tuple[str, Triple]] = []
        self._image_directory: Optional[str] = None
        self._image_generation = 0
        super().__init__(
            schema=first.schema,
            concepts=first.concepts,
            properties=first.properties,
            instances=first.instances,
            object_store=ShardedObjectStore(self.shards, partitioner),
            datatype_store=ShardedDatatypeStore(self.shards, partitioner),
            type_store=ShardedTypeStore(self.shards, partitioner),
            statistics=first.statistics,
            skipped_triples=sum(shard.skipped_triples for shard in shards),
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(
        cls,
        data: Graph,
        ontology: Optional[Graph] = None,
        shards: int = 2,
        updatable: bool = False,
        policy: Optional[CompactionPolicy] = None,
    ) -> "ShardedStore":
        """Encode ``data`` once, then partition the encoded triples into shards."""
        return cls.from_store(
            SuccinctEdge.from_graph(data, ontology=ontology),
            shards=shards,
            updatable=updatable,
            policy=policy,
            ontology=ontology,
        )

    @classmethod
    def from_store(
        cls,
        store: SuccinctEdge,
        shards: int = 2,
        updatable: bool = False,
        policy: Optional[CompactionPolicy] = None,
        ontology: Optional[Graph] = None,
    ) -> "ShardedStore":
        """Partition an existing (monolithic) store into subject-interval shards.

        The shards adopt ``store``'s dictionaries, schema and statistics;
        each rebuilds its slice of the three layouts through the
        ``presorted`` path (a subject-filtered subsequence of a PSO run is
        still in PSO order, so no sort pass runs).
        """
        object_triples = list(store.object_store.iter_triples())
        datatype_triples = list(store.datatype_store.iter_triples())
        type_triples = list(store.type_store.iter_triples())
        subjects = (
            [triple[1] for triple in object_triples]
            + [triple[1] for triple in datatype_triples]
            + [pair[0] for pair in type_triples]
        )
        partitioner = SubjectPartitioner.balanced(subjects, shards)

        # One bucketing pass per layout (a single shard_of bisect per
        # triple); appending in scan order preserves the PSO/PS/SO order the
        # presorted construction path relies on.
        shard_of = partitioner.shard_of
        object_parts: List[List[EncodedTriple]] = [[] for _ in range(partitioner.shard_count)]
        for triple in object_triples:
            object_parts[shard_of(triple[1])].append(triple)
        datatype_parts: List[List[EncodedDatatypeTriple]] = [
            [] for _ in range(partitioner.shard_count)
        ]
        for triple in datatype_triples:
            datatype_parts[shard_of(triple[1])].append(triple)
        type_parts: List[List[EncodedTypeTriple]] = [[] for _ in range(partitioner.shard_count)]
        for pair in type_triples:
            type_parts[shard_of(pair[0])].append(pair)

        shard_stores: List[SuccinctEdge] = []
        for index in range(partitioner.shard_count):
            part = SuccinctEdge(
                schema=store.schema,
                concepts=store.concepts,
                properties=store.properties,
                instances=store.instances,
                object_store=ObjectTripleStore(object_parts[index], presorted=True),
                datatype_store=DatatypeTripleStore(datatype_parts[index], presorted=True),
                type_store=RDFTypeStore(type_parts[index]),
                statistics=store.statistics,
                skipped_triples=store.skipped_triples if index == 0 else 0,
            )
            if updatable:
                part = UpdatableSuccinctEdge(part, policy=policy, ontology=ontology)
            shard_stores.append(part)
        return cls(shard_stores, partitioner)

    # ------------------------------------------------------------------ #
    # persistence (per-shard v4 image directories, see docs/persistence.md)
    # ------------------------------------------------------------------ #

    #: Manifest filename inside a shard image directory.
    MANIFEST_NAME = "shards.json"

    def save_image_directory(self, directory, atomic: bool = False) -> int:
        """Persist every shard as a v4 store image under ``directory``.

        Layout: a ``shards.json`` manifest (shard count, partition
        boundaries, per-shard file names) next to one ``shard-NNNN.sedg``
        v4 image per shard.  Updatable shards with a pending delta are
        compacted first so each image captures the shard's full visible
        state.  Each shard image carries its own copy of the shared
        dictionaries (images are self-contained by design); the loader
        rebinds shards to one copy, so the duplication costs disk, not RAM.

        Returns the total bytes written across manifest and images.
        """
        with self._write_lock:
            return self._save_image_directory_locked(directory, atomic)

    def _save_image_directory_locked(self, directory, atomic: bool) -> int:
        from repro.store.persistence import save_store_image

        os.makedirs(directory, exist_ok=True)
        total = 0
        files: List[str] = []
        for index, shard in enumerate(self.shards):
            target = shard
            if isinstance(shard, UpdatableSuccinctEdge):
                if shard.delta_operation_count:
                    shard.compact()
                target = shard.base
            name = f"shard-{index:04d}.sedg"
            total += save_store_image(target, os.path.join(directory, name), atomic=atomic)
            files.append(name)
        manifest = {
            "format": "succinctedge-shard-images",
            "version": 1,
            "shards": self.shard_count,
            "boundaries": self.partitioner.boundaries,
            "files": files,
        }
        payload = json.dumps(manifest, indent=2).encode("utf-8")
        manifest_path = os.path.join(directory, self.MANIFEST_NAME)
        if atomic:
            staged = manifest_path + ".tmp"
            with open(staged, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(staged, manifest_path)
        else:
            with open(manifest_path, "wb") as handle:
                handle.write(payload)
        # The images capture the full visible state (pending deltas were
        # compacted above), so the write log restarts here and worker
        # attachments key on the new generation.
        self._image_directory = str(directory)
        self._image_generation += 1
        self._delta_log = []
        return total + len(payload)

    @classmethod
    def load_image_directory(
        cls,
        directory,
        mmap: bool = True,
        updatable: bool = False,
        policy: Optional[CompactionPolicy] = None,
    ) -> "ShardedStore":
        """Reassemble a sharded store from a :meth:`save_image_directory` tree.

        Shard 0's image provides the (single, shared) dictionaries, schema
        and statistics; every other shard's layouts are rebound to them, so
        the on-disk dictionary duplication never reaches memory.  With
        ``mmap=True`` each shard's succinct layouts alias its own mapping —
        startup cost stays independent of the total triple count.
        """
        from repro.store.persistence import PersistenceError, load_store

        manifest_path = os.path.join(directory, cls.MANIFEST_NAME)
        try:
            with open(manifest_path, "rb") as handle:
                manifest = json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            raise PersistenceError(
                f"{directory!s} has no {cls.MANIFEST_NAME} manifest — "
                "expected a directory written by ShardedStore.save_image_directory"
            ) from None
        except (ValueError, UnicodeDecodeError) as error:
            raise PersistenceError(
                f"{manifest_path!s} is not a valid shard manifest: {error}"
            ) from None
        if manifest.get("format") != "succinctedge-shard-images":
            raise PersistenceError(
                f"{manifest_path!s} does not describe shard images "
                f"(format={manifest.get('format')!r})"
            )
        files = manifest.get("files") or []
        if len(files) != manifest.get("shards") or not files:
            raise PersistenceError(
                f"{manifest_path!s} is inconsistent: {manifest.get('shards')} shards "
                f"declared but {len(files)} image files listed"
            )
        partitioner = SubjectPartitioner(manifest.get("boundaries") or [])
        if partitioner.shard_count != len(files):
            raise PersistenceError(
                f"{manifest_path!s} is inconsistent: {len(files)} image files but "
                f"boundaries describe {partitioner.shard_count} intervals"
            )
        first = load_store(os.path.join(directory, files[0]), mmap=mmap)
        shards: List[SuccinctEdge] = [first]
        for name in files[1:]:
            loaded = load_store(os.path.join(directory, name), mmap=mmap)
            rebound = SuccinctEdge(
                schema=first.schema,
                concepts=first.concepts,
                properties=first.properties,
                instances=first.instances,
                object_store=loaded.object_store,
                datatype_store=loaded.datatype_store,
                type_store=loaded.type_store,
                statistics=first.statistics,
                skipped_triples=0,
            )
            rebound.image = loaded.image
            shards.append(rebound)
        if updatable:
            shards = [
                UpdatableSuccinctEdge(shard, policy=policy) for shard in shards
            ]
        store = cls(shards, partitioner)
        store._image_directory = str(directory)
        return store

    # ------------------------------------------------------------------ #
    # shard accounting
    # ------------------------------------------------------------------ #

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard_of_subject(self, subject_id: int) -> int:
        """Index of the shard owning ``subject_id`` (the pruning primitive)."""
        return self.partitioner.shard_of(subject_id)

    def shard_property_cardinalities(self, property_id: int) -> List[int]:
        """Per-shard triple counts for ``property_id`` (both PSO layouts).

        The cost-based planner and :class:`~repro.query.parallel.ParallelExecutor`
        use this to prune empty shards from a leaf scatter and to size the
        scatter batches — each count is two Algorithm-2 probes per shard on
        the rank/select directories, so the aggregation is cheap.
        """
        return [
            shard.object_store.count_triples_with_property(property_id)
            + shard.datatype_store.count_triples_with_property(property_id)
            for shard in self.shards
        ]

    def shard_concept_cardinalities(
        self, concept_low: int, concept_high: int
    ) -> List[int]:
        """Per-shard ``rdf:type`` triple counts for a concept interval."""
        return [
            shard.type_store.count_concept_interval(concept_low, concept_high)
            for shard in self.shards
        ]

    def shard_summary(self) -> List[dict]:
        """Per-shard accounting (interval, triple counts, epochs)."""
        rows = []
        for index, shard in enumerate(self.shards):
            low, high = self.partitioner.interval(index)
            rows.append(
                {
                    "shard": index,
                    "subjects": (low, high),
                    "triples": shard.triple_count,
                    "epoch": shard.snapshot_epoch,
                }
            )
        return rows

    def __repr__(self) -> str:
        sizes = ", ".join(str(shard.triple_count) for shard in self.shards)
        return f"ShardedStore({self.triple_count} triples over {self.shard_count} shards [{sizes}])"

    # ------------------------------------------------------------------ #
    # epochs (aggregated: the serving cache keys on these)
    # ------------------------------------------------------------------ #

    @property
    def data_epoch(self) -> int:  # type: ignore[override]
        """Total applied write operations across every shard."""
        return sum(shard.data_epoch for shard in self.shards)

    @property
    def compaction_epoch(self) -> int:  # type: ignore[override]
        """Total compactions across every shard."""
        return sum(shard.compaction_epoch for shard in self.shards)

    # ------------------------------------------------------------------ #
    # write path (routing; only with updatable shards)
    # ------------------------------------------------------------------ #

    def _route(self, triple: Triple) -> Optional[SuccinctEdge]:
        subject_id = self.instances.try_locate(triple.subject)
        if subject_id is None:
            # Never-seen subjects receive fresh identifiers above everything
            # observed at partitioning time — the last shard's open interval.
            return self.shards[-1]
        return self.shards[self.partitioner.shard_of(subject_id)]

    def insert(self, triple: Triple) -> bool:
        """Route the insert to the owning shard (requires updatable shards).

        Writes are serialized across shards (one facade lock): the shards
        share one set of dictionaries, and concurrent identifier assignment
        from two shard locks would alias two fresh terms to one id.
        """
        with self._write_lock:
            changed = self._route(triple).insert(triple)
            if changed:
                self._delta_log.append(("insert", triple))
            return changed

    def delete(self, triple: Triple) -> bool:
        """Route the delete to the owning shard (requires updatable shards)."""
        with self._write_lock:
            subject_id = self.instances.try_locate(triple.subject)
            if subject_id is None:
                return False
            changed = self.shards[self.partitioner.shard_of(subject_id)].delete(triple)
            if changed:
                self._delta_log.append(("delete", triple))
            return changed

    def insert_graph(self, graph: Graph) -> int:
        """Insert every triple of ``graph``; return how many were new."""
        return sum(1 for triple in graph if self.insert(triple))

    def delete_graph(self, graph: Graph) -> int:
        """Delete every triple of ``graph``; return how many were visible."""
        return sum(1 for triple in graph if self.delete(triple))

    def compact(self) -> List[CompactionReport]:
        """Synchronously compact every updatable shard with a pending delta."""
        reports = []
        for shard in self.shards:
            if isinstance(shard, UpdatableSuccinctEdge) and shard.delta_operation_count:
                reports.append(shard.compact())
        return reports

    def compact_in_background(self) -> list:
        """Kick off background compaction on every shard with a pending delta."""
        threads = []
        for shard in self.shards:
            if isinstance(shard, UpdatableSuccinctEdge) and shard.delta_operation_count:
                threads.append(shard.compact_in_background())
        return threads

    def maybe_compact(self, background: bool = False) -> int:
        """Policy check per shard; returns how many shards triggered."""
        triggered = 0
        for shard in self.shards:
            if isinstance(shard, UpdatableSuccinctEdge) and shard.maybe_compact(
                background=background
            ):
                triggered += 1
        return triggered

    def delta_shipment(self, directory_provider=None):
        """A consistent ``(image directory, generation, data epoch, ops)`` tuple.

        The sharded analogue of
        :meth:`~repro.store.updatable.UpdatableSuccinctEdge.delta_shipment`:
        worker processes map the per-shard images of the directory and
        replay the facade-level write log through their own routing insert /
        delete path, reproducing identifier assignment exactly.  When no
        image directory has been written yet, ``directory_provider()`` names
        one and :meth:`save_image_directory` runs right here under the write
        lock (note this compacts shards with pending deltas — their visible
        state is unchanged, identifiers are stable); without a provider this
        raises :class:`ValueError`.
        """
        with self._write_lock:
            if self._image_directory is None:
                if directory_provider is None:
                    raise ValueError(
                        "the sharded store has no on-disk image directory; pass "
                        "directory_provider (or call save_image_directory first)"
                    )
                self._save_image_directory_locked(directory_provider(), atomic=True)
            return (
                self._image_directory,
                self._image_generation,
                self.data_epoch,
                tuple(self._delta_log),
            )

    def replication_slice(self, generation: int, applied: int, upto_epoch=None) -> dict:
        """The facade write-log suffix a replica is missing (sharded analogue).

        Same contract as
        :meth:`~repro.store.updatable.UpdatableSuccinctEdge.replication_slice`,
        against the facade-level log and the image-directory generation: a
        replica bootstraps from a :meth:`save_image_directory` tree and
        replays the routed facade writes.  Saving a new image directory
        clears the log and bumps the generation (the shards' visible state
        is unchanged — pending deltas are compacted into the images), so a
        stale generation means *re-bootstrap*, exactly like a monolithic
        compaction.  The facade's ``data_epoch`` (the sum of per-shard
        epochs) advances by one per logged write and is untouched by the
        generation bump, so ``data_epoch - len(log)`` is again the constant
        epoch of the shipped images.
        """
        with self._write_lock:
            log = self._delta_log
            if generation != self._image_generation or applied > len(log):
                return {
                    "resync": True,
                    "generation": self._image_generation,
                    "epoch": self.data_epoch,
                }
            base_epoch = self.data_epoch - len(log)
            end = len(log)
            if upto_epoch is not None:
                end = min(end, max(0, upto_epoch - base_epoch))
            start = max(0, applied)
            if start > end:
                end = start
            return {
                "resync": False,
                "generation": generation,
                "applied": end,
                "epoch": base_epoch + end,
                "operations": list(log[start:end]),
            }

    def snapshot_info(self) -> dict:
        """Aggregated accounting plus the per-shard breakdown."""
        return {
            "shards": self.shard_count,
            "compaction_epoch": self.compaction_epoch,
            "data_epoch": self.data_epoch,
            "visible_triples": self.triple_count,
            "per_shard": self.shard_summary(),
        }
