"""Process-pool query execution over memory-mapped store images.

The GIL keeps :class:`~repro.query.parallel.ParallelExecutor`'s thread-pool
fan-out from buying compute scaling on stock CPython; this module executes
the *same* scatter/gather plan shape on a pool of **worker processes** that
memory-map the v4 store image (persistence PR 6) — N workers share one page
cache, so attaching is near-free and RAM stays O(1) in the worker count.

Architecture
------------

* **Attachment**: every task ships a small *attach spec* — the base image
  path (a monolithic ``.sedg`` v4 image or a
  :meth:`~repro.store.sharding.ShardedStore.save_image_directory` tree), a
  *generation* (the compaction epoch / image-directory generation, so a
  compact-and-swap rotation re-attaches workers), and the path of a spilled
  **term-level delta log** holding the writes applied since the base image
  was taken.  Workers ``load_store(path, mmap=True)`` lazily, cache the
  attachment, and replay only the log suffix they have not applied yet.
  Replaying through the public ``insert``/``delete`` path reproduces the
  coordinator's dictionary state exactly — overflow and instance identifiers
  are assigned sequentially and idempotently, so id-level work units mean
  the same terms on both sides.
* **Work units** are compact and id-level: leaf scans ship as one task per
  ``(candidate property × shard)`` returning raw identifier pairs, and
  bind-join batches ship encoded bindings evaluated sequentially inside one
  worker.  The coordinator merges replies in the exact monolithic PSO/PS/SO
  order that :class:`~repro.query.parallel.ParallelExecutor` defines
  (property-major, object layout before datatype layout, shard-minor), so
  results stay **byte-identical** to the sequential engine.
* **Fault containment**: a worker crash (:class:`BrokenProcessPool`), a
  corrupt image (:class:`~repro.store.persistence.PersistenceError` raised
  inside the task) or a task timeout surfaces as a clean exception on the
  coordinator — never a hang, never partial rows (engines materialize rows
  before releasing them).  The pool restarts lazily on the next submit, and
  :class:`ProcessPoolQueryEngine` retries a failed query once after healing.
* **Kernel accounting**: each reply carries the worker's per-task kernel
  counter delta; the coordinator folds it into its own
  :data:`~repro.sds.kernels.KERNEL_COUNTS`, so ``bench.measure.measure_call``
  sees worker-side rank/select work in the existing breakdown.

Fork-safety: the pool defaults to the ``fork`` start method where available
(fast, inherits the warm interpreter); the module-level state that must not
leak through a fork — kernel counters, :class:`~repro.caching.LruCache`
locks and entries — is reset by ``os.register_at_fork`` hooks in
:mod:`repro.sds.kernels` and :mod:`repro.caching`, and the worker
initializer re-zeroes the counters for spawned workers too.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import multiprocessing

from repro.query.engine import QueryEngine
from repro.query.parallel import DEFAULT_BATCH_SIZE, ParallelExecutor
from repro.query.tp_eval import TriplePatternEvaluator
from repro.rdf.terms import BlankNode, Literal, URI
from repro.sds.kernels import kernel_counters, merge_kernel_counters, reset_kernel_counters
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.bindings import Binding
from repro.store.sharding import ShardedStore
from repro.store.succinct_edge import SuccinctEdge
from repro.store.updatable import UpdatableSuccinctEdge


class WorkerPoolError(RuntimeError):
    """A worker task failed terminally (crash, timeout, exhausted pool).

    The coordinator raises this instead of hanging or emitting partial
    rows; the pool restarts itself before the next query.
    """


# --------------------------------------------------------------------------- #
# wire codec: terms, bindings and patterns as compact picklable tuples
# --------------------------------------------------------------------------- #


def _encode_term(term, instances):
    """Encode one RDF term against the shared instance dictionary.

    Terms present in the dictionary travel as a bare identifier (the
    common case: every stored individual); literals and never-stored terms
    travel self-contained.
    """
    if isinstance(term, Literal):
        return ("l", term.lexical, term.datatype, term.language)
    identifier = instances.try_locate(term)
    if identifier is not None:
        return ("i", identifier)
    if isinstance(term, URI):
        return ("u", term.value)
    return ("b", term.label)


def _decode_term(code, instances):
    kind = code[0]
    if kind == "i":
        return instances.extract(code[1])
    if kind == "l":
        return Literal(code[1], datatype=code[2], language=code[3])
    if kind == "u":
        return URI(code[1])
    return BlankNode(code[1])


def _encode_binding(binding: Binding, instances) -> tuple:
    return tuple((name, _encode_term(value, instances)) for name, value in binding.items())


def _decode_binding(code: tuple, instances) -> Binding:
    return Binding._adopt({name: _decode_term(value, instances) for name, value in code})


def _encode_pattern(pattern: TriplePattern, instances) -> tuple:
    def slot(value):
        if isinstance(value, Variable):
            return ("v", value.name)
        return _encode_term(value, instances)

    return (slot(pattern.subject), slot(pattern.predicate), slot(pattern.object))


def _decode_pattern(code: tuple, instances) -> TriplePattern:
    def slot(value):
        if value[0] == "v":
            return Variable(value[1])
        return _decode_term(value, instances)

    return TriplePattern(slot(code[0]), slot(code[1]), slot(code[2]))


# --------------------------------------------------------------------------- #
# worker side (module-level so both fork and spawn start methods pickle it)
# --------------------------------------------------------------------------- #


class _WorkerState:
    """One worker's cached attachment: mapped base, live overlay, evaluators."""

    __slots__ = ("token", "base", "live", "evaluators", "applied_epoch", "applied_ops")

    def __init__(self, token) -> None:
        self.token = token
        self.base = None
        self.live = None
        self.evaluators: Dict[bool, TriplePatternEvaluator] = {}
        self.applied_epoch = 0
        self.applied_ops = 0


_STATE: Optional[_WorkerState] = None


def _worker_initialize() -> None:
    """Per-process initialisation: counters start at zero in every worker."""
    reset_kernel_counters()


def _load_base(spec):
    from repro.store.persistence import load_store

    if spec["kind"] == "shards":
        return ShardedStore.load_image_directory(spec["path"], mmap=spec["mmap"])
    return load_store(spec["path"], mmap=spec["mmap"])


def _wrap_writable(base):
    """An updatable overlay over the mapped base, for delta-log replay."""
    if isinstance(base, ShardedStore):
        wrapped = [UpdatableSuccinctEdge(shard) for shard in base.shards]
        return ShardedStore(wrapped, base.partitioner)
    return UpdatableSuccinctEdge(base)


def _apply_delta(state: _WorkerState, spec) -> None:
    with open(spec["delta_path"], "rb") as handle:
        operations = pickle.load(handle)
    if state.live is None:
        state.live = _wrap_writable(state.base)
        state.evaluators = {}
    if state.applied_ops > len(operations):
        # The log can only grow within one generation; a shorter log means
        # this worker is somehow ahead of the spec — rebuild defensively.
        # (Replaying from scratch is safe: identifier assignment is
        # idempotent, so already-grown dictionaries resolve identically.)
        state.live = _wrap_writable(state.base)
        state.evaluators = {}
        state.applied_ops = 0
    for operation, triple in operations[state.applied_ops :]:
        if operation == "insert":
            state.live.insert(triple)
        else:
            state.live.delete(triple)
    state.applied_ops = len(operations)
    state.applied_epoch = spec["data_epoch"]


def _attach(spec) -> _WorkerState:
    """The (cached) worker store described by ``spec``, synced forward.

    Attachment is lazy and per-task so a corrupt or truncated image raises
    a clean :class:`~repro.store.persistence.PersistenceError` through the
    task's future instead of killing the worker at pool start.  Sync is
    forward-only: a task carrying an older epoch than the worker has
    already applied is served with the newer state (reads always see live
    data, exactly like the coordinator's own evaluator).
    """
    global _STATE
    state = _STATE
    token = (spec["kind"], spec["path"], spec["generation"])
    if state is None or state.token != token:
        state = _WorkerState(token)
        state.base = _load_base(spec)
        _STATE = state
    if spec["delta_path"] is not None and spec["data_epoch"] > state.applied_epoch:
        _apply_delta(state, spec)
    return state


def _evaluator(state: _WorkerState, reasoning: bool) -> TriplePatternEvaluator:
    evaluator = state.evaluators.get(reasoning)
    if evaluator is None:
        evaluator = TriplePatternEvaluator(state.live or state.base, reasoning=reasoning)
        state.evaluators[reasoning] = evaluator
    return evaluator


def _shard_view(store, shard_index):
    if shard_index is None:
        return store
    return store.shards[shard_index]


def _dispatch(spec, op, args, reasoning):
    if op == "ping":
        return {"pid": os.getpid()}
    if op == "counters":
        return kernel_counters()
    if op == "sleep":  # fault-injection harness: a task of known duration
        time.sleep(args[0])
        return args[0]
    state = _attach(spec)
    store = state.live or state.base
    instances = store.instances
    if op == "eval_many":
        pattern_code, binding_codes = args
        pattern = _decode_pattern(pattern_code, instances)
        evaluate = _evaluator(state, reasoning).evaluate
        rows: List[tuple] = []
        for code in binding_codes:
            for result in evaluate(pattern, _decode_binding(code, instances)):
                rows.append(_encode_binding(result, instances))
        return rows
    shard = _shard_view(store, args[-1])
    if op == "pairs":
        property_id = args[0]
        return (
            list(shard.object_store.pairs_for_property(property_id)),
            [
                (subject_id, _encode_term(literal, instances))
                for subject_id, literal in shard.datatype_store.pairs_for_property(property_id)
            ],
        )
    if op == "subjects_obj":
        return list(shard.object_store.subjects_for(args[0], args[1]))
    if op == "subjects_lit":
        literal = _decode_term(args[1], instances)
        return list(shard.datatype_store.subjects_for(args[0], literal))
    if op == "type_interval":
        return list(shard.type_store.subjects_of_interval(args[0], args[1]))
    if op == "type_concept":
        return list(shard.type_store.subjects_of(args[0]))
    if op == "expand":
        from repro.query.paths import expand_frontier_local

        forward_pids, inverse_pids, frontier_ids, literal_codes = args[:4]
        literals = [_decode_term(code, instances) for code in literal_codes]
        out_ids, out_literals = expand_frontier_local(
            shard, forward_pids, inverse_pids, frontier_ids, literals
        )
        return [out_ids, [_encode_term(literal, instances) for literal in out_literals]]
    raise ValueError(f"unknown worker op {op!r}")


def _worker_run(task):
    """Task entry point: dispatch, then report the kernel-call delta."""
    spec, op, args, reasoning = task
    before = kernel_counters()
    payload = _dispatch(spec, op, args, reasoning)
    deltas = {
        name: count - before.get(name, 0)
        for name, count in kernel_counters().items()
        if count - before.get(name, 0)
    }
    return {"payload": payload, "kernels": deltas, "pid": os.getpid()}


# --------------------------------------------------------------------------- #
# coordinator side: the pool wrapper with health, restart and accounting
# --------------------------------------------------------------------------- #


class WorkerPool:
    """A self-healing :class:`ProcessPoolExecutor` for store work units.

    The pool is *generic*: tasks carry their own attach spec, so one pool
    can serve several engines (the serving layer shares one across its
    reasoning modes) and successive stores (the fuzz harness reuses one
    across examples).  A broken pool — worker SIGKILLed, queue corrupted,
    task past ``task_timeout`` — is torn down and lazily recreated on the
    next submit; the failed task surfaces as :class:`WorkerPoolError`.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        task_timeout: Optional[float] = None,
    ) -> None:
        if max_workers is None:
            max_workers = max(2, min(8, os.cpu_count() or 1))
        if max_workers < 1:
            raise ValueError("worker pool needs at least one process")
        self.max_workers = max_workers
        self.mp_context = mp_context or ("fork" if hasattr(os, "fork") else "spawn")
        self.task_timeout = task_timeout
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self.restarts = 0
        self.tasks_submitted = 0
        self.tasks_failed = 0
        self.worker_kernel_calls = 0

    # -- lifecycle ----------------------------------------------------- #

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context(self.mp_context),
                    initializer=_worker_initialize,
                )
            return self._executor

    @staticmethod
    def _processes_of(executor) -> list:
        processes = getattr(executor, "_processes", None) or {}
        return [process for process in dict(processes).values() if process is not None]

    def worker_pids(self) -> List[int]:
        """PIDs of the currently alive workers (empty before the first task)."""
        with self._lock:
            executor = self._executor
        if executor is None:
            return []
        return [process.pid for process in self._processes_of(executor) if process.is_alive()]

    def prime(self) -> List[int]:
        """Spin every worker up with a ping; returns the distinct PIDs seen."""
        futures = [self.submit(None, "ping", (), True) for _ in range(self.max_workers)]
        return sorted({self.result(future)["pid"] for future in futures})

    def restart(self) -> None:
        """Tear the executor down (killing stuck workers); next submit rebuilds."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is None:
            return
        self.restarts += 1
        processes = self._processes_of(executor)
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.kill()

    def close(self) -> None:
        """Shut the pool down (idempotent; a later submit re-creates it)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    # -- task round trips ---------------------------------------------- #

    def submit(self, spec, op, args, reasoning=True):
        """Submit one work unit; transparently rebuilds a broken executor."""
        for _ in range(2):
            executor = self._ensure()
            try:
                future = executor.submit(_worker_run, (spec, op, args, reasoning))
            except (BrokenProcessPool, RuntimeError):
                # Broken (a worker died between tasks) or shut down by a
                # concurrent restart: retire this executor and retry once
                # with a fresh one.
                with self._lock:
                    if self._executor is executor:
                        self._executor = None
                        self.restarts += 1
                continue
            self.tasks_submitted += 1
            return future
        raise WorkerPoolError("worker pool could not be (re)started")

    def result(self, future):
        """The payload of one submitted task, with kernel counters folded in.

        Raises :class:`WorkerPoolError` when the pool broke or the task
        exceeded ``task_timeout`` (the pool is restarted so the next query
        gets healthy workers); exceptions raised *inside* the task — e.g. a
        :class:`~repro.store.persistence.PersistenceError` for a corrupt
        image — propagate unchanged.
        """
        try:
            reply = future.result(timeout=self.task_timeout)
        except FutureTimeoutError:
            self.tasks_failed += 1
            future.cancel()
            self.restart()
            raise WorkerPoolError(
                f"worker task exceeded the {self.task_timeout}s task timeout; pool restarted"
            ) from None
        except BrokenProcessPool as error:
            self.tasks_failed += 1
            self.restart()
            raise WorkerPoolError(f"worker pool broke mid-task: {error}") from error
        kernels = reply["kernels"]
        if kernels:
            merge_kernel_counters(kernels)
            self.worker_kernel_calls += sum(kernels.values())
        return reply["payload"]

    def info(self) -> dict:
        """Pool health and accounting (the serving layer exposes this)."""
        return {
            "max_workers": self.max_workers,
            "mp_context": self.mp_context,
            "task_timeout": self.task_timeout,
            "alive_workers": len(self.worker_pids()),
            "restarts": self.restarts,
            "tasks_submitted": self.tasks_submitted,
            "tasks_failed": self.tasks_failed,
            "worker_kernel_calls": self.worker_kernel_calls,
        }

    def __repr__(self) -> str:
        return (
            f"WorkerPool({self.max_workers} workers, {self.mp_context}, "
            f"{self.tasks_submitted} tasks, {self.restarts} restarts)"
        )


# --------------------------------------------------------------------------- #
# the process-backed evaluator and engine
# --------------------------------------------------------------------------- #


class ProcessExecutor(ParallelExecutor):
    """:class:`ParallelExecutor` whose fan-out crosses process boundaries.

    Shares the thread version's scatter decisions, batch sizing and shard
    pruning (inherited), but ships the work units to a :class:`WorkerPool`
    as encoded id-level tasks.  Single-shard leaf scans stay local — a
    whole-store scan gains nothing from one round trip and would lose
    ``LIMIT``/``ASK`` early termination — while bind-join batches (the
    compute bulk of multi-pattern queries) and per-shard leaf scans ship.
    """

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        inner: Optional[TriplePatternEvaluator] = None,
        max_workers: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        pool: Optional[WorkerPool] = None,
        mp_context: Optional[str] = None,
        task_timeout: Optional[float] = None,
        workspace: Optional[str] = None,
    ) -> None:
        if max_workers is None:
            max_workers = max(2, min(8, os.cpu_count() or 1))
        super().__init__(
            store,
            reasoning=reasoning,
            inner=inner,
            max_workers=max_workers,
            batch_size=batch_size,
        )
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else WorkerPool(
            max_workers=max_workers, mp_context=mp_context, task_timeout=task_timeout
        )
        self._owns_workspace = workspace is None
        if workspace is None:
            workspace = tempfile.mkdtemp(prefix="succinctedge-mp-")
        else:
            os.makedirs(workspace, exist_ok=True)
        self.workspace = workspace
        self._spec_lock = threading.Lock()
        self._saved_images: Dict[int, str] = {}
        self._delta_files: Dict[Tuple[int, int], str] = {}

    # -- attachment: base image + delta log shipping -------------------- #

    def _image_provider(self, base, generation) -> str:
        """Save (once per generation) a v4 image for a store with none."""
        path = self._saved_images.get(generation)
        if path is None:
            from repro.store.persistence import save_store_image

            os.makedirs(self.workspace, exist_ok=True)
            path = os.path.join(self.workspace, f"base-g{generation}.sedg")
            save_store_image(base, path, atomic=True)
            self._saved_images[generation] = path
        return path

    def _directory_provider(self) -> str:
        os.makedirs(self.workspace, exist_ok=True)
        return os.path.join(self.workspace, "shards-auto")

    def _spill_delta(self, generation: int, epoch: int, operations) -> str:
        """Write the delta log to one immutable file per (generation, epoch).

        The log is append-only within a generation, so a later epoch's file
        is a strict extension of an earlier one — workers replay only the
        suffix past their applied count.
        """
        key = (generation, epoch)
        path = self._delta_files.get(key)
        if path is None:
            os.makedirs(self.workspace, exist_ok=True)
            path = os.path.join(self.workspace, f"delta-g{generation}-e{epoch}.pkl")
            handle = tempfile.NamedTemporaryFile(dir=self.workspace, delete=False)
            try:
                pickle.dump(list(operations), handle)
                handle.flush()
            finally:
                handle.close()
            os.replace(handle.name, path)
            self._delta_files[key] = path
        return path

    def _attach_spec(self) -> dict:
        """One consistent attach spec for the current store state.

        Sampled under the store's write lock (via ``delta_shipment``), so
        the (base generation, data epoch, op log) triple is atomic even
        while writes race the query.
        """
        store = self.store
        with self._spec_lock:
            if isinstance(store, ShardedStore):
                kind = "shards"
                path, generation, epoch, operations = store.delta_shipment(
                    self._directory_provider
                )
            elif isinstance(store, UpdatableSuccinctEdge):
                kind = "image"
                path, generation, epoch, operations = store.delta_shipment(
                    self._image_provider
                )
            else:
                kind = "image"
                generation, epoch, operations = 0, 0, ()
                image = getattr(store, "image", None)
                path = getattr(image, "path", None) if image is not None else None
                if path is None:
                    path = self._image_provider(store, 0)
            delta_path = (
                self._spill_delta(generation, epoch, operations) if operations else None
            )
        return {
            "kind": kind,
            "path": str(path),
            "mmap": True,
            "generation": generation,
            "data_epoch": epoch,
            "delta_path": delta_path,
        }

    def resync(self) -> None:
        """Forget cached attachment artifacts (call after an epoch rotation).

        Attach specs are re-sampled per dispatch anyway — the generation
        bump makes workers re-attach on their next task — so this only
        drops the coordinator-side file caches of superseded generations.
        """
        with self._spec_lock:
            self._saved_images.clear()
            self._delta_files.clear()

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:
        """Release the pool (if owned) and the spill workspace."""
        super().close()  # the inherited (unused-by-default) thread pool
        if self._owns_pool:
            self.pool.close()
        with self._spec_lock:
            self._saved_images.clear()
            self._delta_files.clear()
        if self._owns_workspace:
            shutil.rmtree(self.workspace, ignore_errors=True)

    # -- scatter/gather over the process pool ---------------------------- #

    def _scatter_rdf_type(
        self, subject_var: str, object_term: URI, binding: Binding
    ) -> Iterator[Binding]:
        store = self.store
        concept_id = store.concepts.try_locate(object_term)
        if concept_id is None:
            return
        spec = self._attach_spec()
        pool = self.pool
        if self.reasoning:
            low, high = store.concepts.interval(object_term)
            indexes = self._shard_indexes_holding(self._concept_shard_counts(low, high))
            futures = [
                pool.submit(spec, "type_interval", (low, high, index), self.reasoning)
                for index in indexes
            ]
        else:
            indexes = self._shard_indexes_holding(
                self._concept_shard_counts(concept_id, concept_id + 1)
            )
            futures = [
                pool.submit(spec, "type_concept", (concept_id, index), self.reasoning)
                for index in indexes
            ]
        extract = store.instances.extract
        extend = binding.extended
        for future in futures:
            for subject_id in pool.result(future):
                yield extend(subject_var, extract(subject_id))

    def _scatter_property(
        self,
        predicate_term: URI,
        subject_var: str,
        object_slot,
        binding: Binding,
    ) -> Iterator[Binding]:
        object_term, object_var = object_slot
        store = self.store
        property_ids = self.inner._candidate_property_ids(predicate_term)
        if not property_ids:
            return
        spec = self._attach_spec()
        pool = self.pool
        instances = store.instances
        extract = instances.extract
        extend = binding.extended

        if object_term is not None:
            futures = []
            if isinstance(object_term, Literal):
                literal_code = _encode_term(object_term, instances)
                for property_id in property_ids:
                    for index in self._shard_indexes_holding(
                        self._property_shard_counts(property_id)
                    ):
                        futures.append(
                            pool.submit(
                                spec, "subjects_lit", (property_id, literal_code, index),
                                self.reasoning,
                            )
                        )
            else:
                object_id = instances.try_locate(object_term)
                if object_id is None:
                    return
                for property_id in property_ids:
                    for index in self._shard_indexes_holding(
                        self._property_shard_counts(property_id)
                    ):
                        futures.append(
                            pool.submit(
                                spec, "subjects_obj", (property_id, object_id, index),
                                self.reasoning,
                            )
                        )
            for future in futures:
                for found_subject in pool.result(future):
                    yield extend(subject_var, extract(found_subject))
            return

        # (?s, p, ?o): one "pairs" task per (property × holding shard),
        # scheduled one property ahead of consumption.  Each task returns
        # both layouts of its shard; the drain emits the object layout
        # across all shards, then the datatype layout — the monolithic
        # order, property-major, shard-minor.
        diagonal = subject_var == object_var
        base = binding.as_dict()
        adopt = Binding._adopt

        def schedule(property_id: int):
            indexes = self._shard_indexes_holding(self._property_shard_counts(property_id))
            return [
                pool.submit(spec, "pairs", (property_id, index), self.reasoning)
                for index in indexes
            ]

        window = []  # at most 2 scheduled properties: current + next
        position = 0
        while position < len(property_ids) or window:
            while position < len(property_ids) and len(window) < 2:
                window.append(schedule(property_ids[position]))
                position += 1
            replies = [pool.result(future) for future in window.pop(0)]
            for object_pairs, _ in replies:
                for found_subject, found_object in object_pairs:
                    if diagonal:
                        if found_subject == found_object:
                            yield extend(subject_var, extract(found_subject))
                        continue
                    values = dict(base)
                    values[subject_var] = extract(found_subject)
                    values[object_var] = extract(found_object)
                    yield adopt(values)
            for _, datatype_pairs in replies:
                for found_subject, literal_code in datatype_pairs:
                    if diagonal:
                        continue  # a subject URI never equals a literal
                    values = dict(base)
                    values[subject_var] = extract(found_subject)
                    values[object_var] = _decode_term(literal_code, instances)
                    yield adopt(values)

    def evaluate_many(
        self, pattern: TriplePattern, bindings: Iterable[Binding]
    ) -> Iterator[Binding]:
        """Batched bind join across the process pool, in upstream order.

        Same windowed ordered drain as the thread executor; the batches
        travel as encoded id-level bindings and come back as encoded rows.
        """
        pool = self.pool
        instances = self.store.instances
        spec = self._attach_spec()
        pattern_code = _encode_pattern(pattern, instances)

        def submit(chunk: List[Binding]):
            codes = tuple(_encode_binding(one, instances) for one in chunk)
            return pool.submit(spec, "eval_many", (pattern_code, codes), self.reasoning)

        def drain(future) -> List[Binding]:
            return [_decode_binding(code, instances) for code in pool.result(future)]

        return self._windowed_many(pattern, bindings, submit=submit, drain=drain)

    def expand_frontier(self, forward_pids, inverse_pids, frontier_ids, frontier_literals):
        """One property-path BFS round, shipped to the worker pool.

        Sharded stores get one ``expand`` task per shard holding any of the
        candidate properties; monolithic stores ship one whole-store task
        (index ``None``) — the BFS round is the compute bulk of a transitive
        query, so it always crosses the process boundary.  Literal frontier
        members travel through the wire codec; ids are global and need none.
        """
        from repro.query.paths import merge_expansions

        store = self.store
        if isinstance(store, ShardedStore) and len(self.shards) >= 2:
            indexes: List[Optional[int]] = []
            seen = set()
            for property_id in list(forward_pids) + list(inverse_pids):
                holding = self._shard_indexes_holding(
                    self._property_shard_counts(property_id)
                )
                for index in holding:
                    if index not in seen:
                        seen.add(index)
                        indexes.append(index)
            if not indexes:
                return [], []
        else:
            indexes = [None]
        spec = self._attach_spec()
        pool = self.pool
        instances = store.instances
        literal_codes = tuple(
            _encode_term(literal, instances) for literal in frontier_literals
        )
        task = (
            tuple(forward_pids),
            tuple(inverse_pids),
            tuple(frontier_ids),
            literal_codes,
        )
        futures = [
            pool.submit(spec, "expand", task + (index,), self.reasoning)
            for index in indexes
        ]
        replies = []
        for future in futures:
            reply_ids, reply_codes = pool.result(future)
            replies.append(
                (reply_ids, [_decode_term(code, instances) for code in reply_codes])
            )
        return merge_expansions(replies)


class ProcessPoolQueryEngine(QueryEngine):
    """A :class:`QueryEngine` executing over a pool of mmap'd worker processes.

    Same construction pattern as
    :class:`~repro.query.parallel.ParallelQueryEngine` — the optimizer keeps
    its sequential runtime estimator, so plans (and row order) cannot
    diverge.  ``execute``/``ask`` retry once after a pool failure
    (:attr:`retryable_exceptions`); the streaming path leaves retries to the
    serving layer, which re-runs the whole query so no partial rows ever
    escape.
    """

    #: Exceptions the serving layer may retry after calling :meth:`heal`.
    retryable_exceptions = (WorkerPoolError,)

    def __init__(
        self,
        store: SuccinctEdge,
        reasoning: bool = True,
        join_strategy: str = "auto",
        max_workers: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        planner: str = "cost",
        pool: Optional[WorkerPool] = None,
        mp_context: Optional[str] = None,
        task_timeout: Optional[float] = None,
        workspace: Optional[str] = None,
        retries: int = 1,
    ) -> None:
        super().__init__(
            store, reasoning=reasoning, join_strategy=join_strategy, planner=planner
        )
        self.retries = max(0, retries)
        self.evaluator = ProcessExecutor(
            store,
            reasoning=reasoning,
            inner=self.evaluator,
            max_workers=max_workers,
            batch_size=batch_size,
            pool=pool,
            mp_context=mp_context,
            task_timeout=task_timeout,
            workspace=workspace,
        )

    @property
    def pool(self) -> WorkerPool:
        """The (possibly shared) worker pool behind this engine."""
        return self.evaluator.pool

    def heal(self) -> None:
        """Restart the worker pool after a failure (the retry hook)."""
        self.evaluator.pool.restart()

    def resync(self) -> None:
        """Drop cached attachment artifacts (after compact-and-swap)."""
        self.evaluator.resync()

    def _retrying(self, call, *args, **kwargs):
        for attempt in range(self.retries + 1):
            try:
                return call(*args, **kwargs)
            except WorkerPoolError:
                self.heal()
                if attempt >= self.retries:
                    raise

    def execute(self, query):
        """Execute with heal-and-retry on pool failure (results materialize)."""
        return self._retrying(super().execute, query)

    def ask(self, query):
        """ASK with heal-and-retry on pool failure."""
        return self._retrying(super().ask, query)

    def close(self) -> None:
        """Release the evaluator's worker pool and spill workspace."""
        self.evaluator.close()

    def __enter__(self) -> "ProcessPoolQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
