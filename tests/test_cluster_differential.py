"""Differential tests: the cluster coordinator must equal the monolithic engine.

The distributed tier's contract is the strongest one in the repo: the
scatter-gather coordinator of :mod:`repro.serve.cluster` — fanning
epoch-pinned work units over HTTP to replicas that bootstrapped from a
shipped image and tail the primary's delta log — must return results
**byte-identical** (same variables, same rows, same order) to a sequential
:class:`~repro.query.engine.QueryEngine` over a monolithic store holding
the same data.  The matrix checks the full paper workload (S1-S15, M1-M5,
R1-R6) plus the A1-A6 analytics at 1, 2 and 4 replicas, first over the
base 80% of the data, then again after the live 20% flowed through
replication — with queries interleaved *between write chunks*, so replicas
converge through on-demand suffix replay mid-run, not in one quiet batch —
and once more with a cold replica joining the set mid-workload.
"""

from __future__ import annotations

import itertools
from types import SimpleNamespace

import pytest

from repro.query.engine import QueryEngine
from repro.rdf.graph import Graph
from repro.serve.cluster import (
    ClusterQueryEngine,
    ClusterReplica,
    HttpReplicationClient,
    ReplicaSet,
    ReplicationSource,
)
from repro.serve.server import QueryServer
from repro.serve.service import QueryService
from repro.sparql.bindings import AskResult
from repro.store.sharding import ShardedStore
from repro.store.succinct_edge import SuccinctEdge

ALL_QUERY_IDS = (
    [f"S{i}" for i in range(1, 16)]
    + [f"M{i}" for i in range(1, 6)]
    + [f"R{i}" for i in range(1, 7)]
    + [f"A{i}" for i in range(1, 7)]
)

REPLICA_COUNTS = (1, 2, 4)


def _rows(result):
    if isinstance(result, AskResult):
        return result.boolean
    return (result.variables, result.to_tuples())


def _cluster_engine(cluster, reasoning: bool) -> ClusterQueryEngine:
    # batch_size=7 forces many bind-join batches per query, so the windowed
    # drain and the cross-replica rotation actually get exercised.
    return ClusterQueryEngine(
        cluster.store,
        cluster.replica_set,
        cluster.source,
        reasoning=reasoning,
        batch_size=7,
    )


# --------------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def live_dataset(small_lubm):
    """~80/20 split: base graph plus the triples streamed in live."""
    base = Graph()
    live = []
    for index, triple in enumerate(small_lubm.graph):
        if index % 5 == 4:
            live.append(triple)
        else:
            base.add(triple)
    return base, live


@pytest.fixture(scope="module")
def base_reference(small_lubm, live_dataset):
    """Monolithic rebuild over the base 80% (the phase-1 ground truth)."""
    base, _ = live_dataset
    return SuccinctEdge.from_graph(base, ontology=small_lubm.ontology)


@pytest.fixture(scope="module")
def live_reference(small_lubm, live_dataset):
    """Monolithic rebuild over base-then-live data (matches insert order)."""
    base, live = live_dataset
    merged = Graph()
    for triple in base:
        merged.add(triple)
    for triple in live:
        merged.add(triple)
    return SuccinctEdge.from_graph(merged, ontology=small_lubm.ontology)


@pytest.fixture(scope="module", params=REPLICA_COUNTS)
def cluster(request, small_lubm, live_dataset, tmp_path_factory):
    """A live cluster: sharded primary, shipping source, N HTTP replicas."""
    base, live = live_dataset
    store = ShardedStore.from_graph(
        base, ontology=small_lubm.ontology, shards=4, updatable=True
    )
    source = ReplicationSource(store, workspace=str(tmp_path_factory.mktemp("ship")))
    primary = QueryServer(QueryService(store), routes=source.routes()).start()
    replicas = []
    servers = []
    for index in range(request.param):
        workdir = str(tmp_path_factory.mktemp(f"replica{index}"))
        replica = ClusterReplica(HttpReplicationClient(primary.url), workdir).bootstrap()
        replicas.append(replica)
        servers.append(replica.serve())
    replica_set = ReplicaSet([server.url for server in servers])
    state = SimpleNamespace(
        store=store,
        source=source,
        primary=primary,
        replicas=replicas,
        servers=servers,
        replica_set=replica_set,
        live=live,
        tmp=tmp_path_factory,
    )
    yield state
    replica_set.close()
    for server in servers:
        server.service.close()
        server.stop()
    primary.service.close()
    primary.stop()
    source.close()


@pytest.fixture(scope="module")
def cluster_live(cluster, small_lubm_catalog):
    """The cluster after the live 20% flowed through replication mid-run.

    Writes go in chunks with a cluster query between every chunk — each
    probe pins the primary's fresh epoch, forcing the replicas through an
    on-demand suffix replay *while the write stream is still flowing* —
    and every probe must already be byte-identical to the sequential
    engine over the live primary.
    """
    catalog = small_lubm_catalog.by_identifier()
    probes = itertools.cycle(["S1", "M2", "R2", "A4"])
    chunk = max(1, len(cluster.live) // 6)
    for start in range(0, len(cluster.live), chunk):
        for triple in cluster.live[start : start + chunk]:
            assert cluster.store.insert(triple)
        query = catalog[next(probes)]
        engine = _cluster_engine(cluster, query.requires_reasoning)
        sequential = QueryEngine(cluster.store, reasoning=query.requires_reasoning)
        try:
            assert _rows(engine.execute(query.sparql)) == _rows(
                sequential.execute(query.sparql)
            )
        finally:
            engine.close()
    # Every replica that served a probe converged onto the primary's log
    # position through suffix replay, never through a re-bootstrap.
    generation, epoch = cluster.source.position()
    for replica in cluster.replicas:
        assert replica.bootstraps == 1
        if replica.syncs:
            assert replica.generation == generation
            assert replica.epoch <= epoch
    return cluster


# --------------------------------------------------------------------------- #
# the differential matrix
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_cluster_base_byte_identical(
    cluster, base_reference, small_lubm_catalog, identifier
):
    # Phase 1: replicas serve exactly the bootstrapped image (no log yet);
    # every work unit is pinned at the bootstrap epoch.
    query = small_lubm_catalog.by_identifier()[identifier]
    sequential = QueryEngine(base_reference, reasoning=query.requires_reasoning)
    engine = _cluster_engine(cluster, query.requires_reasoning)
    try:
        assert _rows(engine.execute(query.sparql)) == _rows(sequential.execute(query.sparql))
    finally:
        engine.close()


@pytest.mark.parametrize("identifier", ALL_QUERY_IDS)
def test_cluster_live_byte_identical(
    cluster_live, live_reference, small_lubm_catalog, identifier
):
    # Phase 2: the live 20% has flowed through replication; replicas stand
    # on a mapped base plus a replayed suffix and must equal a monolithic
    # rebuild over the same data.
    query = small_lubm_catalog.by_identifier()[identifier]
    sequential = QueryEngine(live_reference, reasoning=query.requires_reasoning)
    engine = _cluster_engine(cluster_live, query.requires_reasoning)
    try:
        assert _rows(engine.execute(query.sparql)) == _rows(sequential.execute(query.sparql))
    finally:
        engine.close()


def test_replica_joins_mid_workload(
    cluster_live, live_reference, small_lubm_catalog, tmp_path
):
    """A cold replica bootstraps mid-workload and serves byte-identically.

    The newcomer downloads the *original* image (its generation never
    rotated) and must catch up on the whole live suffix through replay the
    first time a pinned unit reaches it.
    """
    newcomer = ClusterReplica(
        HttpReplicationClient(cluster_live.primary.url), str(tmp_path / "newcomer")
    ).bootstrap()
    server = newcomer.serve()
    # The joined set routes to old replicas *and* the newcomer.
    joined = ReplicaSet(
        [s.url for s in cluster_live.servers] + [server.url], hedge_after_s=5.0
    )
    catalog = small_lubm_catalog.by_identifier()
    try:
        for identifier in ALL_QUERY_IDS:
            query = catalog[identifier]
            sequential = QueryEngine(live_reference, reasoning=query.requires_reasoning)
            engine = ClusterQueryEngine(
                cluster_live.store,
                joined,
                cluster_live.source,
                reasoning=query.requires_reasoning,
                batch_size=7,
            )
            try:
                assert _rows(engine.execute(query.sparql)) == _rows(
                    sequential.execute(query.sparql)
                )
            finally:
                engine.close()
        # The newcomer really served (shard affinity routes units to it) and
        # really converged: same position as the primary, via suffix replay.
        assert joined.info()["dispatches"][-1] > 0
        generation, epoch = cluster_live.source.position()
        assert (newcomer.generation, newcomer.epoch) == (generation, epoch)
        assert newcomer.bootstraps == 1
    finally:
        joined.close()
        server.service.close()
        server.stop()


def test_cluster_actually_fans_out(cluster_live):
    """Work units really crossed the network — this was never all-local."""
    dispatches = cluster_live.replica_set.info()["dispatches"]
    assert sum(dispatches) > 0
    # Shard affinity plus per-batch rotation touches every replica.
    assert all(count > 0 for count in dispatches)
