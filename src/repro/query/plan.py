"""Physical plan description.

The optimizer produces a left-deep sequence of plan steps; each step records
the access path the executor will use (which storage layout and which of the
paper's algorithms) and the join type linking it to the already-computed
prefix.  The plan is purely descriptive — the executor interprets it — but it
doubles as an ``EXPLAIN`` output for debugging and for the optimizer tests.

Since the streaming-pipeline rework the plan has a second half: the
*solution-modifier pipeline* (:class:`ModifierStep` / :class:`PipelinePlan`)
describing the operators applied after the WHERE clause — aggregation,
ordering (with the top-k short circuit for ``ORDER BY ... LIMIT k``),
projection, DISTINCT and the lazy OFFSET/LIMIT slice.  The streaming engine
executes exactly the steps listed here, so ``EXPLAIN`` output and execution
cannot disagree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sparql.ast import TriplePattern, Variable


class AccessPath(enum.Enum):
    """How a triple pattern is evaluated against the storage layouts."""

    RDFTYPE_OS = "rdftype-os"          # (?s, rdf:type, C) — OS lookup in the red-black tree
    RDFTYPE_SO = "rdftype-so"          # (s, rdf:type, ?o) — SO lookup in the red-black tree
    RDFTYPE_SCAN = "rdftype-scan"      # (?s, rdf:type, ?o) — full scan of the type store
    PSO_SP = "pso-sp"                  # (s, p, ?o) — Algorithm 3
    PSO_PO = "pso-po"                  # (?s, p, o) — Algorithm 4
    PSO_P = "pso-p"                    # (?s, p, ?o) — property run scan
    PSO_FULL = "pso-full"              # unbound predicate — full scan
    LITERAL_SCAN = "literal-scan"      # datatype store scan for literal-bound objects


class JoinMethod(enum.Enum):
    """Join algorithm used to combine a step with the current intermediate result."""

    NONE = "none"                      # first step of the plan
    BIND_PROPAGATION = "bind"          # index nested-loop: propagate bindings into the TP
    MERGE = "merge"                    # merge join on ordered subject runs


@dataclass
class PlanStep:
    """One step of the left-deep plan."""

    pattern_index: int
    pattern: TriplePattern
    access_path: AccessPath
    join_method: JoinMethod = JoinMethod.NONE
    join_type: str = ""
    estimated_cardinality: Optional[int] = None

    def describe(self) -> str:
        """One-line human-readable description."""
        parts = [f"tp{self.pattern_index + 1} [{self.access_path.value}]"]
        if self.join_method != JoinMethod.NONE:
            parts.append(f"join={self.join_method.value}({self.join_type})")
        if self.estimated_cardinality is not None:
            parts.append(f"card~{self.estimated_cardinality}")
        parts.append(str(self.pattern))
        return " ".join(parts)


@dataclass
class PhysicalPlan:
    """Ordered sequence of plan steps (a left-deep join tree)."""

    steps: List[PlanStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def order(self) -> List[int]:
        """Pattern indexes in execution order."""
        return [step.pattern_index for step in self.steps]

    def explain(self) -> str:
        """Multi-line EXPLAIN-style description of the plan."""
        return "\n".join(step.describe() for step in self.steps)


class ModifierOp(enum.Enum):
    """Solution-modifier operators applied after the WHERE-clause pipeline."""

    AGGREGATE = "aggregate"        # GROUP BY + aggregate projection (blocking)
    EXTEND = "extend"              # non-aggregated (expr AS ?var) projections
    SORT = "sort"                  # full ORDER BY sort (blocking)
    TOP_K = "top-k"                # bounded ORDER BY ... LIMIT k selection
    PROJECT = "project"            # restrict to the projected variables
    DISTINCT = "distinct"          # duplicate-row elimination (streaming)
    SLICE = "slice"                # lazy OFFSET/LIMIT


@dataclass
class ModifierStep:
    """One solution-modifier operator with its parameters."""

    op: ModifierOp
    detail: str = ""

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.op.value}({self.detail})" if self.detail else self.op.value


@dataclass
class PipelinePlan:
    """The full query plan: WHERE-clause steps plus the modifier pipeline."""

    where: "PhysicalPlan"
    modifiers: List[ModifierStep] = field(default_factory=list)

    def explain(self) -> str:
        """Multi-line EXPLAIN output covering both plan halves."""
        lines = [self.where.explain()] if self.where.steps else []
        lines.extend(step.describe() for step in self.modifiers)
        return "\n".join(lines)


def classify_access_path(pattern: TriplePattern) -> AccessPath:
    """Access path implied by the shape of a triple pattern."""
    subject_is_variable = isinstance(pattern.subject, Variable)
    object_is_variable = isinstance(pattern.object, Variable)
    predicate_is_variable = isinstance(pattern.predicate, Variable)
    if predicate_is_variable:
        return AccessPath.PSO_FULL
    if pattern.is_rdf_type:
        if not object_is_variable:
            return AccessPath.RDFTYPE_OS
        if not subject_is_variable:
            return AccessPath.RDFTYPE_SO
        return AccessPath.RDFTYPE_SCAN
    if not subject_is_variable and object_is_variable:
        return AccessPath.PSO_SP
    if subject_is_variable and not object_is_variable:
        return AccessPath.PSO_PO
    if subject_is_variable and object_is_variable:
        return AccessPath.PSO_P
    # Fully bound pattern: treated as an existence check through Algorithm 3.
    return AccessPath.PSO_SP
