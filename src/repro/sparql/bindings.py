"""Solution mappings (variable bindings) and result sets.

A :class:`Binding` maps variable names to RDF terms; a :class:`ResultSet`
is an ordered collection of bindings together with the projected variable
names, comparable to the SPARQL JSON results a full engine would emit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.rdf.terms import Term


class Binding:
    """An immutable mapping from variable names to RDF terms."""

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Dict[str, Term]] = None) -> None:
        self._values: Dict[str, Term] = dict(values or {})

    def get(self, name: str, default: Optional[Term] = None) -> Optional[Term]:
        """Value bound to ``name`` or ``default``."""
        return self._values.get(name, default)

    def __getitem__(self, name: str) -> Term:
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def items(self) -> Iterable[Tuple[str, Term]]:
        """Iterate over ``(variable, term)`` pairs."""
        return self._values.items()

    @classmethod
    def _adopt(cls, values: Dict[str, Term]) -> "Binding":
        """Wrap ``values`` without copying (internal fast path; caller owns the dict)."""
        binding = cls.__new__(cls)
        binding._values = values
        return binding

    def extended(self, name: str, value: Term) -> "Binding":
        """A new binding with ``name`` additionally bound to ``value``."""
        merged = dict(self._values)
        merged[name] = value
        return Binding._adopt(merged)

    def merged(self, other: "Binding") -> Optional["Binding"]:
        """Merge with ``other``; return ``None`` when they conflict."""
        merged = dict(self._values)
        for name, value in other.items():
            if name in merged and merged[name] != value:
                return None
            merged[name] = value
        return Binding._adopt(merged)

    def compatible(self, other: "Binding") -> bool:
        """Whether the two bindings agree on every shared variable."""
        for name, value in other.items():
            if name in self._values and self._values[name] != value:
                return False
        return True

    def project(self, names: Sequence[str]) -> "Binding":
        """Restrict to the given variable names (unbound names are dropped)."""
        return Binding._adopt(
            {name: self._values[name] for name in names if name in self._values}
        )

    def as_dict(self) -> Dict[str, Term]:
        """A plain-dict copy of the mapping."""
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Binding):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"?{k}={v}" for k, v in sorted(self._values.items()))
        return f"Binding({inner})"


class AskResult:
    """The boolean outcome of an ASK query.

    Truthiness follows the answer (``bool(result)``), so an :class:`AskResult`
    drops into conditions directly; the underlying value is ``.boolean``.
    """

    __slots__ = ("boolean",)

    def __init__(self, boolean: bool) -> None:
        self.boolean = bool(boolean)

    def __bool__(self) -> bool:
        return self.boolean

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AskResult):
            return self.boolean == other.boolean
        if isinstance(other, bool):
            return self.boolean == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.boolean)

    def __repr__(self) -> str:
        return f"AskResult({self.boolean})"


class ResultSet:
    """An ordered collection of bindings with the projected variable names."""

    def __init__(self, variables: Sequence[str], bindings: Iterable[Binding] = ()) -> None:
        self.variables = list(variables)
        self.bindings = list(bindings)

    def __len__(self) -> int:
        return len(self.bindings)

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.bindings)

    def __repr__(self) -> str:
        return f"ResultSet(variables={self.variables}, rows={len(self.bindings)})"

    def to_tuples(self) -> List[Tuple[Optional[Term], ...]]:
        """Rows as tuples following the projected variable order."""
        return [tuple(binding.get(name) for name in self.variables) for binding in self.bindings]

    def to_set(self) -> set:
        """Rows as a set of tuples (order-insensitive comparison helper)."""
        return set(self.to_tuples())

    def distinct(self) -> "ResultSet":
        """A new result set with duplicate rows removed (order preserved)."""
        seen = set()
        unique: List[Binding] = []
        for binding in self.bindings:
            row = tuple(binding.get(name) for name in self.variables)
            if row not in seen:
                seen.add(row)
                unique.append(binding)
        return ResultSet(self.variables, unique)
