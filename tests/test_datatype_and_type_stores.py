"""Tests for the datatype-property store and the RDFType store."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dictionary.literal_store import LiteralStore
from repro.rdf.terms import Literal
from repro.store.datatype_store import DatatypeTripleStore
from repro.store.rdftype_store import RDFTypeStore

DATATYPE_TRIPLES = [
    (3, 10, Literal(3.5)),
    (3, 10, Literal(4.1)),
    (3, 11, Literal(2.0)),
    (5, 10, Literal("Alice")),
    (5, 12, Literal("Bob")),
]


class TestDatatypeStore:
    def test_counts(self):
        store = DatatypeTripleStore(DATATYPE_TRIPLES)
        assert len(store) == 5
        assert store.properties == [3, 5]
        assert store.count_triples_with_property(3) == 3
        assert store.count_subjects_with_property(3) == 2
        assert store.count_triples_with_property(99) == 0

    def test_literals_for(self):
        store = DatatypeTripleStore(DATATYPE_TRIPLES)
        assert store.literals_for(10, 3) == [Literal(3.5), Literal(4.1)]
        assert store.literals_for(11, 3) == [Literal(2.0)]
        assert store.literals_for(10, 5) == [Literal("Alice")]
        assert store.literals_for(99, 3) == []
        assert store.literals_for(10, 99) == []

    def test_subjects_for_literal(self):
        store = DatatypeTripleStore(DATATYPE_TRIPLES)
        assert store.subjects_for(5, Literal("Bob")) == [12]
        assert store.subjects_for(3, Literal(2.0)) == [11]
        assert store.subjects_for(3, Literal(99.0)) == []

    def test_pairs_for_property(self):
        store = DatatypeTripleStore(DATATYPE_TRIPLES)
        pairs = list(store.pairs_for_property(3))
        assert pairs == [(10, Literal(3.5)), (10, Literal(4.1)), (11, Literal(2.0))]

    def test_pairs_for_property_interval(self):
        store = DatatypeTripleStore(DATATYPE_TRIPLES)
        rows = list(store.pairs_for_property_interval(3, 6))
        assert len(rows) == 5
        assert {row[0] for row in rows} == {3, 5}
        assert list(store.pairs_for_property_interval(6, 10)) == []

    def test_iter_triples(self):
        store = DatatypeTripleStore(DATATYPE_TRIPLES)
        assert sorted((p, s, str(o)) for p, s, o in store.iter_triples()) == sorted(
            (p, s, str(o)) for p, s, o in DATATYPE_TRIPLES
        )

    def test_duplicate_literal_values_are_kept(self):
        triples = [(1, 1, Literal(7.0)), (1, 2, Literal(7.0))]
        store = DatatypeTripleStore(triples)
        assert len(store) == 2
        assert len(store.literals) == 2

    def test_shared_literal_store(self):
        shared = LiteralStore()
        DatatypeTripleStore(DATATYPE_TRIPLES, shared)
        assert len(shared) == 5

    def test_empty(self):
        store = DatatypeTripleStore([])
        assert len(store) == 0
        assert store.literals_for(1, 1) == []
        assert list(store.pairs_for_property(1)) == []

    def test_size_accounting(self):
        store = DatatypeTripleStore(DATATYPE_TRIPLES)
        assert store.size_in_bytes() > store.size_in_bytes(include_literals=False)


class TestRDFTypeStore:
    def test_insert_and_lookup(self):
        store = RDFTypeStore([(1, 100), (2, 100), (3, 101)])
        assert len(store) == 3
        assert store.contains(1, 100)
        assert not store.contains(1, 101)
        assert store.subjects_of(100) == [1, 2]
        assert store.subjects_of(101) == [3]
        assert store.subjects_of(999) == []
        assert store.concepts_of(1) == [100]
        assert store.concepts_of(99) == []

    def test_duplicates_ignored(self):
        store = RDFTypeStore([(1, 100), (1, 100)])
        assert len(store) == 1

    def test_multiple_types_per_subject(self):
        store = RDFTypeStore([(1, 100), (1, 101), (1, 102)])
        assert store.concepts_of(1) == [100, 101, 102]

    def test_interval_lookup_for_reasoning(self):
        # Concepts 100-103 form a LiteMat interval [100, 104).
        store = RDFTypeStore([(1, 100), (2, 101), (3, 103), (4, 104), (5, 101)])
        assert store.subjects_of_interval(100, 104) == [1, 2, 3, 5]
        assert store.subjects_of_interval(104, 200) == [4]
        assert store.subjects_of_interval(0, 1) == []

    def test_interval_deduplicates_subjects(self):
        store = RDFTypeStore([(1, 100), (1, 101)])
        assert store.subjects_of_interval(100, 102) == [1]

    def test_counts(self):
        store = RDFTypeStore([(1, 100), (2, 100), (3, 101)])
        assert store.count_concept(100) == 2
        assert store.count_concept_interval(100, 102) == 3

    def test_iter_triples(self):
        pairs = [(2, 100), (1, 100), (3, 101)]
        store = RDFTypeStore(pairs)
        assert list(store.iter_triples()) == sorted(pairs)

    def test_size_accounting(self):
        store = RDFTypeStore([(i, 100 + i % 3) for i in range(50)])
        assert store.size_in_bytes() > 0


@settings(max_examples=40, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(min_value=1, max_value=40), st.integers(min_value=100, max_value=140)),
        max_size=200,
    ),
    low=st.integers(min_value=100, max_value=140),
    span=st.integers(min_value=0, max_value=20),
)
def test_property_rdftype_interval_matches_filter(pairs, low, span):
    store = RDFTypeStore(pairs)
    high = low + span
    expected = sorted({s for s, c in pairs if low <= c < high})
    assert store.subjects_of_interval(low, high) == expected
    assert store.count_concept_interval(low, high) == len({(s, c) for s, c in pairs if low <= c < high})
