"""Figure 8 — back-end construction time.

For every dataset (ENGIE 250/500, LUBM 1K...100K) and every system, measure
the time to read the triples and build the system's storage layout (including
indexes; SuccinctEdge is self-indexed).  The paper's finding: SuccinctEdge
shows no advantage on very small datasets (SDS start-up overhead) but scales
better as the dataset grows.
"""

from __future__ import annotations

from repro.bench.harness import record_table

from repro.baselines.registry import SYSTEM_ORDER
from repro.bench.harness import format_table, measure_construction
from repro.store.succinct_edge import SuccinctEdge


def _dataset_order(context):
    sized = sorted(
        (name for name in context.datasets if name not in ("ENGIE-250", "ENGIE-500")),
        key=lambda name: len(context.datasets[name]),
    )
    return ["ENGIE-250", "ENGIE-500"] + sized


def test_fig08_construction_time(benchmark, context, results_dir):
    """Regenerate the Figure 8 series (construction time in ms per dataset)."""
    datasets = _dataset_order(context)
    rows = {}
    for system_name in SYSTEM_ORDER:
        cells = []
        for dataset_name in datasets:
            graph = context.datasets[dataset_name]
            measurement = measure_construction(system_name, graph, context.lubm.ontology)
            cells.append(measurement.total_ms)
        rows[system_name] = cells
    table = format_table(
        "Figure 8: back-end construction time", datasets, rows, unit="ms, measured + simulated I/O"
    )
    record_table(results_dir, "fig08_construction_time", table)

    # The benchmarked operation: SuccinctEdge construction on the 5K dataset.
    graph = context.datasets.get("5K", context.datasets[datasets[-1]])
    benchmark.pedantic(
        lambda: SuccinctEdge.from_graph(graph, ontology=context.lubm.ontology),
        rounds=1,
        iterations=1,
    )
    assert rows["SuccinctEdge"][0] > 0
