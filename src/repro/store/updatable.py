"""UpdatableSuccinctEdge: live inserts and deletes over the succinct base.

:class:`UpdatableSuccinctEdge` is a :class:`~repro.store.succinct_edge.SuccinctEdge`
whose three storage layouts are the overlay read views of
:mod:`repro.store.delta` — every query path (``match``, ``query``, the
streaming pipeline, the optimizer statistics) works unchanged while
:meth:`insert` / :meth:`delete` mutate a small in-memory delta:

* inserts of never-seen individuals extend the (already mutable) instance
  dictionary; never-seen concepts and properties go through the dictionaries'
  *overflow tables* (identifiers above the LiteMat space, degenerate
  intervals) and are merged into the dictionaries at compaction;
* deletes record tombstones; deleting a pending insert simply drops it;
* occurrence statistics *and* the cost-based planner's join profiles
  (per-property triple counts, see :mod:`repro.dictionary.statistics`) are
  maintained incrementally so that the optimizer plans over base + delta —
  every applied write also bumps the statistics version, invalidating
  derived caches (the unbound-pattern mass, epoch-keyed plan caches);
* :meth:`compact` folds the delta into a fresh succinct base through the
  ``presorted`` construction path — the overlay's merged iterators are
  already in PSO / PS / SO order, so compaction skips the sort pass;
  :meth:`compact_in_background` does the expensive SDS construction on a
  worker thread and replays the writes that arrived meanwhile.

Snapshot-epoch accounting: ``data_epoch`` counts applied write operations,
``compaction_epoch`` counts compactions, and :meth:`snapshot_info` reports
both next to the base/delta sizes.  See ``docs/update_lifecycle.md`` for the
full lifecycle, ordering guarantees and concurrency caveats.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dictionary.literal_store import LiteralStore
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF_TYPE
from repro.rdf.terms import Literal, Triple, URI
from repro.store.builder import _SCHEMA_PREDICATES
from repro.store.datatype_store import DatatypeTripleStore, EncodedDatatypeTriple
from repro.store.delta import (
    CompactionPolicy,
    DeltaOverlay,
    OverlayDatatypeStore,
    OverlayObjectStore,
    OverlayTypeStore,
)
from repro.store.rdftype_store import EncodedTypeTriple, RDFTypeStore
from repro.store.succinct_edge import SuccinctEdge
from repro.store.triple_store import EncodedTriple, ObjectTripleStore


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction did."""

    epoch: int
    object_triples: int
    datatype_triples: int
    type_triples: int
    operations_folded: int
    overflow_terms_merged: int
    duration_ms: float

    @property
    def triples(self) -> int:
        """Total triples in the rebuilt base."""
        return self.object_triples + self.datatype_triples + self.type_triples


@dataclass(frozen=True)
class _Snapshot:
    """A frozen merged view, the input of one base rebuild."""

    object_triples: List[EncodedTriple]
    datatype_triples: List[EncodedDatatypeTriple]
    type_triples: List[EncodedTypeTriple]
    operations: int


class UpdatableSuccinctEdge(SuccinctEdge):
    """A SuccinctEdge with a write path: delta overlay plus compaction.

    Parameters
    ----------
    base:
        The immutable store to overlay.  The updatable store *adopts* the
        base's dictionaries and statistics (they are shared, and the
        dictionaries grow with live inserts).
    policy:
        Compaction thresholds consulted by :meth:`maybe_compact`.  Inserts
        and deletes never compact implicitly — callers (e.g. the edge
        stream processor) decide when to check the policy.
    ontology:
        The ontology graph the base was encoded from, if available.  Kept so
        that :meth:`rebuild` can re-encode with the full hierarchy (schema
        axioms are not stored as data triples and cannot be recovered from
        :meth:`export_graph`).
    """

    def __init__(
        self,
        base: SuccinctEdge,
        policy: Optional[CompactionPolicy] = None,
        ontology: Optional[Graph] = None,
    ) -> None:
        self._base = base
        self._delta = DeltaOverlay()
        self._ontology = ontology
        self.policy = policy if policy is not None else CompactionPolicy()
        super().__init__(
            schema=base.schema,
            concepts=base.concepts,
            properties=base.properties,
            instances=base.instances,
            object_store=OverlayObjectStore(base.object_store, self._delta.objects),
            datatype_store=OverlayDatatypeStore(base.datatype_store, self._delta.datatypes),
            type_store=OverlayTypeStore(base.type_store, self._delta.types),
            statistics=base.statistics,
            skipped_triples=base.skipped_triples,
        )
        self.data_epoch = 0
        self.compaction_epoch = 0
        self.last_compaction: Optional[CompactionReport] = None
        self._write_lock = threading.RLock()
        self._log_ops = False
        self._oplog: List[Tuple[str, Triple]] = []
        # Term-level log of every applied write since the current base was
        # installed (cleared at compaction).  The process execution backend
        # ships it read-only next to the base image so worker processes can
        # replay live writes over their mapped copy; see delta_shipment().
        self._delta_log: List[Tuple[str, Triple]] = []
        self._compaction_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(
        cls,
        data: Graph,
        ontology: Optional[Graph] = None,
        policy: Optional[CompactionPolicy] = None,
    ) -> "UpdatableSuccinctEdge":
        """Build an immutable base from ``data`` and wrap it for live updates."""
        return cls(
            SuccinctEdge.from_graph(data, ontology=ontology), policy=policy, ontology=ontology
        )

    @classmethod
    def empty(
        cls,
        ontology: Optional[Graph] = None,
        policy: Optional[CompactionPolicy] = None,
    ) -> "UpdatableSuccinctEdge":
        """An empty live store: dictionaries from the ontology, no triples.

        This is the edge-ingestion entry point — the ontology is encoded once
        (centrally, in the paper's deployment) and every reading afterwards
        arrives through :meth:`insert`.
        """
        return cls.from_graph(Graph(), ontology=ontology, policy=policy)

    # ------------------------------------------------------------------ #
    # write path
    # ------------------------------------------------------------------ #

    def insert(self, triple: Triple) -> bool:
        """Make ``triple`` visible to every read path; ``True`` if it was new.

        Schema-axiom triples (``rdfs:subClassOf`` & co.) and ``rdf:type``
        statements with a non-URI object are skipped, mirroring the builder;
        they count towards :attr:`skipped_triples`.
        """
        with self._write_lock:
            changed = self._apply_insert(triple, record_stats=True)
            if changed:
                self.data_epoch += 1
                self._delta_log.append(("insert", triple))
                if self._log_ops:
                    self._oplog.append(("insert", triple))
            return changed

    def delete(self, triple: Triple) -> bool:
        """Remove ``triple`` from every read path; ``True`` if it was visible.

        Deleting a pending insert drops it from the delta; deleting a base
        triple records a tombstone that the next compaction folds away.
        """
        with self._write_lock:
            changed = self._apply_delete(triple, record_stats=True)
            if changed:
                self.data_epoch += 1
                self._delta_log.append(("delete", triple))
                if self._log_ops:
                    self._oplog.append(("delete", triple))
            return changed

    def insert_graph(self, graph: Graph) -> int:
        """Insert every triple of ``graph``; return how many were new."""
        return sum(1 for triple in graph if self.insert(triple))

    def delete_graph(self, graph: Graph) -> int:
        """Delete every triple of ``graph``; return how many were visible."""
        return sum(1 for triple in graph if self.delete(triple))

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #

    def compact(self, image_path=None, remap: bool = False) -> CompactionReport:
        """Fold the delta into a fresh succinct base (synchronous).

        The merged iterators of the overlay views are already deduplicated
        and in index order, so the new layouts are built through the
        ``presorted`` path with no sort pass.  Identifiers are stable across
        compaction — query results before and after are identical.

        With ``image_path`` the freshly compacted base is additionally
        persisted as a v4 store image, written atomically (staged sibling
        file + ``os.replace``) so a concurrent loader never sees a torn
        image; the image captures exactly the new compaction epoch's
        snapshot.  With ``remap=True`` the written image is immediately
        loaded back memory-mapped and swapped in as the serving base — the
        process then serves straight off the page cache and the heap copies
        of the succinct layouts become garbage.  Both default off; the
        no-argument call keeps its historical behavior.

        If a background compaction is in flight, it is waited for first (its
        swap would otherwise clobber this one's).
        """
        if remap and image_path is None:
            raise ValueError("compact(remap=True) needs image_path to know where to map from")
        self._join_background_compaction()
        with self._write_lock:
            started = time.perf_counter()
            snapshot = self._snapshot()
            new_base = self._build_base(snapshot)
            report = self._install(new_base, snapshot, started)
            if image_path is not None:
                from repro.store.persistence import save_store_image

                save_store_image(self._base, image_path, atomic=True)
                if remap:
                    self._remap_base(image_path)
            return report

    def _remap_base(self, image_path) -> None:
        """Swap the just-written image in as the memory-mapped serving base.

        Called under the write lock right after :meth:`_install`, so the
        delta is empty and identifiers are stable: the mapped layouts hold
        exactly the triples of the heap-built base they replace.  The facade
        keeps its live (shared, growable) dictionaries and statistics — only
        the three storage layouts are re-pointed at the mapping.
        """
        from repro.store.persistence import load_store

        mapped = load_store(image_path, mmap=True)
        remapped = SuccinctEdge(
            schema=self.schema,
            concepts=self.concepts,
            properties=self.properties,
            instances=self.instances,
            object_store=mapped.object_store,
            datatype_store=mapped.datatype_store,
            type_store=mapped.type_store,
            statistics=self.statistics,
            skipped_triples=mapped.skipped_triples,
        )
        remapped.image = mapped.image
        staged = UpdatableSuccinctEdge(remapped, policy=self.policy, ontology=self._ontology)
        self._base = remapped
        self._delta = staged._delta
        self.object_store = staged.object_store
        self.datatype_store = staged.datatype_store
        self.type_store = staged.type_store
        self.image = mapped.image

    def compact_in_background(self) -> threading.Thread:
        """Fold the delta on a worker thread; returns the (started) thread.

        The snapshot is taken under the write lock, the expensive SDS
        construction runs off-lock while reads and writes proceed against
        the old overlay, and writes that arrive during the build are
        replayed onto the fresh delta at swap time.  ``join()`` the returned
        thread to wait for the swap.

        At most one compaction runs at a time: while one is in flight, this
        returns its thread instead of starting another (two overlapping
        swaps would clobber each other's replay log and lose writes).
        """
        with self._write_lock:
            if self._compaction_thread is not None and self._compaction_thread.is_alive():
                return self._compaction_thread
            started = time.perf_counter()
            snapshot = self._snapshot()
            self._oplog = []
            self._log_ops = True

            def job() -> None:
                try:
                    new_base = self._build_base(snapshot)
                    staging = UpdatableSuccinctEdge(
                        new_base, policy=self.policy, ontology=self._ontology
                    )
                    with self._write_lock:
                        # Replay the writes that raced the build into the
                        # staged delta *before* anything becomes visible, so
                        # unlocked readers never observe a window where an
                        # acknowledged write is missing.  Statistics were
                        # already recorded when each operation was first
                        # applied; the replay only re-populates the delta.
                        for operation, triple in self._oplog:
                            if operation == "insert":
                                staging._apply_insert(triple, record_stats=False)
                            else:
                                staging._apply_delete(triple, record_stats=False)
                        self._install(new_base, snapshot, started, staged=staging)
                        # The racing writes live in the staged delta, not the
                        # new base — they are exactly what a worker replaying
                        # against the new base still needs.
                        self._delta_log = list(self._oplog)
                finally:
                    with self._write_lock:
                        self._log_ops = False
                        self._oplog = []
                        self._compaction_thread = None

            thread = threading.Thread(target=job, name="succinctedge-compaction", daemon=True)
            self._compaction_thread = thread
        thread.start()
        return thread

    def maybe_compact(self, background: bool = False) -> bool:
        """Compact if the policy's thresholds are met; ``True`` if triggered.

        While a background compaction is in flight this reports ``False``
        without re-triggering — the pending delta only shrinks at swap time,
        so the thresholds would otherwise re-fire on every check.
        """
        with self._write_lock:
            if self._compaction_thread is not None and self._compaction_thread.is_alive():
                return False
            if not self.policy.should_compact(len(self._delta), len(self._base)):
                return False
            if background:
                self.compact_in_background()
            else:
                self.compact()
            return True

    def _join_background_compaction(self) -> None:
        """Wait for any in-flight background compaction to finish its swap."""
        while True:
            with self._write_lock:
                thread = self._compaction_thread
            if thread is None or not thread.is_alive():
                return
            thread.join()

    def rebuild(self, ontology: Optional[Graph] = None) -> "UpdatableSuccinctEdge":
        """Full re-encode: a *new* updatable store built from the visible triples.

        Unlike :meth:`compact` (which keeps every identifier stable), a
        rebuild runs the whole construction pipeline again, folding overflow
        concepts and properties into a fresh LiteMat encoding.  Use it when
        many never-seen terms have accumulated, or before persisting a store
        whose overflow terms should regain hierarchy intervals.

        ``ontology`` defaults to the graph this store was built from (schema
        axioms are not stored as data triples, so :meth:`export_graph` alone
        could not reproduce the hierarchy).
        """
        with self._write_lock:
            if ontology is None:
                ontology = self._ontology
            return UpdatableSuccinctEdge.from_graph(
                self.export_graph(), ontology=ontology, policy=self.policy
            )

    # ------------------------------------------------------------------ #
    # snapshot-epoch accounting
    # ------------------------------------------------------------------ #

    @property
    def snapshot_epoch(self) -> Tuple[int, int]:
        """``(compaction_epoch, data_epoch)`` — lexicographically monotonic."""
        return self.compaction_epoch, self.data_epoch

    @property
    def base_triple_count(self) -> int:
        """Triples in the immutable base (excludes the delta)."""
        return len(self._base)

    @property
    def delta_operation_count(self) -> int:
        """Pending delta operations (inserts plus tombstones)."""
        return len(self._delta)

    @property
    def base(self) -> SuccinctEdge:
        """The current immutable base store."""
        return self._base

    @property
    def delta(self) -> DeltaOverlay:
        """The current delta overlay."""
        return self._delta

    def delta_shipment(self, image_provider=None):
        """A consistent ``(base image path, generation, data epoch, ops)`` tuple.

        The process execution backend ships this to its worker pool: a
        worker memory-maps the base image and replays the term-level
        operation log through its own ``insert``/``delete`` path.  Replay
        reproduces the coordinator's state *exactly* — dictionary and
        overflow identifiers are assigned sequentially and idempotently, so
        running the same changed-operation sequence over the same base
        yields identical identifiers, and with them identical id-level rows.

        The generation is the compaction epoch: compaction installs a new
        base (and clears the log), so a generation bump tells workers to
        re-attach.  When the current base has no on-disk image — it was
        heap-built, or the last compaction did not persist one —
        ``image_provider(base, generation)`` is called (still under the
        write lock, so the saved image matches the returned log) to save
        one; without a provider this raises :class:`ValueError`.
        """
        with self._write_lock:
            image = getattr(self._base, "image", None)
            path = getattr(image, "path", None) if image is not None else None
            if path is None:
                if image_provider is None:
                    raise ValueError(
                        "the store base has no on-disk image; pass image_provider "
                        "to save one (or compact(image_path=..., remap=True) first)"
                    )
                path = image_provider(self._base, self.compaction_epoch)
            return str(path), self.compaction_epoch, self.data_epoch, tuple(self._delta_log)

    def replication_slice(self, generation: int, applied: int, upto_epoch=None) -> dict:
        """The delta-log suffix a replica at ``(generation, applied)`` is missing.

        The replication protocol's pull primitive (see
        :mod:`repro.serve.cluster`): a replica that bootstrapped from this
        store's generation-``G`` base image and has replayed ``applied``
        operations of the current log asks for the rest.  Returns a dict:

        * ``resync: True`` when the replica's generation is stale (a
          compaction installed a new base and cleared the log) or its
          applied count exceeds the log — the replica must re-bootstrap
          from a fresh image; ``generation``/``epoch`` report the current
          position so the replica can tell how far behind it was;
        * otherwise ``operations`` holds ``log[applied:end]`` (term-level
          ``(op, triple)`` pairs — replaying them through the replica's own
          ``insert``/``delete`` reproduces identifier assignment exactly),
          ``applied`` the replica's op count after replay and ``epoch`` the
          data epoch it lands on.

        ``upto_epoch`` caps the slice: a coordinator pinning a query at
        snapshot epoch ``E`` syncs its replicas to *exactly* ``E``, never
        past it, so concurrently shipped writes cannot leak into an older
        query's rows.  Within one generation the log only grows and
        ``data_epoch - len(log)`` is the constant epoch of the base image,
        so the cap is a plain index computation.
        """
        with self._write_lock:
            log = self._delta_log
            if generation != self.compaction_epoch or applied > len(log):
                return {
                    "resync": True,
                    "generation": self.compaction_epoch,
                    "epoch": self.data_epoch,
                }
            base_epoch = self.data_epoch - len(log)
            end = len(log)
            if upto_epoch is not None:
                end = min(end, max(0, upto_epoch - base_epoch))
            start = max(0, applied)
            if start > end:
                # The replica is already past the cap: nothing to send, and
                # never regress it (the epoch conflict surfaces replica-side).
                end = start
            return {
                "resync": False,
                "generation": generation,
                "applied": end,
                "epoch": base_epoch + end,
                "operations": list(log[start:end]),
            }

    def snapshot_info(self) -> dict:
        """One consistent accounting snapshot (sizes, epochs, overflow)."""
        with self._write_lock:
            return {
                "compaction_epoch": self.compaction_epoch,
                "data_epoch": self.data_epoch,
                "base_triples": len(self._base),
                "visible_triples": self.triple_count,
                "delta_inserts": self._delta.insert_count,
                "delta_tombstones": self._delta.tombstone_count,
                "overflow_concepts": self.concepts.overflow_count,
                "overflow_properties": self.properties.overflow_count,
            }

    def __repr__(self) -> str:
        return (
            f"UpdatableSuccinctEdge({self.triple_count} visible triples: "
            f"{len(self._base)} base, {self._delta.insert_count} delta inserts, "
            f"{self._delta.tombstone_count} tombstones, "
            f"epoch={self.compaction_epoch}.{self.data_epoch})"
        )

    # ------------------------------------------------------------------ #
    # internals: applying one operation
    # ------------------------------------------------------------------ #

    def _apply_insert(self, triple: Triple, record_stats: bool) -> bool:
        subject, predicate, obj = triple
        if predicate in _SCHEMA_PREDICATES:
            # TBox updates require a re-encode (see docs/update_lifecycle.md);
            # mirroring the builder they are skipped, not stored.
            self.skipped_triples += 1
            return False
        if predicate == RDF_TYPE:
            if not isinstance(obj, URI):
                self.skipped_triples += 1
                return False
            concept_id = self.concepts.add_overflow(obj)
            subject_id = self.instances.add(subject)
            delta = self._delta.types
            if delta.is_tombstoned(subject_id, concept_id):
                delta.remove_tombstone(subject_id, concept_id)
            elif self.type_store.contains(subject_id, concept_id):
                return False
            else:
                delta.add_insert(subject_id, concept_id)
            if record_stats:
                self.concepts.record_occurrence(concept_id)
                self.instances.record_occurrence(subject_id)
                self.statistics.note_type_write(+1)
            return True
        property_id = self.properties.add_overflow(predicate)
        subject_id = self.instances.add(subject)
        if isinstance(obj, Literal):
            delta = self._delta.datatypes
            if delta.is_tombstoned(property_id, subject_id, obj):
                delta.remove_tombstone(property_id, subject_id, obj)
            elif obj in self.datatype_store.literals_for(subject_id, property_id):
                return False
            else:
                delta.add_insert(property_id, subject_id, obj)
            if record_stats:
                self.properties.record_occurrence(property_id)
                self.instances.record_occurrence(subject_id)
                self.statistics.note_property_write(property_id, +1)
            return True
        object_id = self.instances.add(obj)
        delta = self._delta.objects
        if delta.is_tombstoned(property_id, subject_id, object_id):
            delta.remove_tombstone(property_id, subject_id, object_id)
        elif self.object_store.contains(subject_id, property_id, object_id):
            return False
        else:
            delta.add_insert(property_id, subject_id, object_id)
        if record_stats:
            self.properties.record_occurrence(property_id)
            self.instances.record_occurrence(subject_id)
            self.instances.record_occurrence(object_id)
            self.statistics.note_property_write(property_id, +1)
        return True

    def _apply_delete(self, triple: Triple, record_stats: bool) -> bool:
        subject, predicate, obj = triple
        if predicate in _SCHEMA_PREDICATES:
            return False
        if predicate == RDF_TYPE:
            if not isinstance(obj, URI):
                return False
            concept_id = self.concepts.try_locate(obj)
            subject_id = self.instances.try_locate(subject)
            if concept_id is None or subject_id is None:
                return False
            delta = self._delta.types
            if delta.has_insert(subject_id, concept_id):
                delta.remove_insert(subject_id, concept_id)
            elif not delta.is_tombstoned(subject_id, concept_id) and self._base.type_store.contains(
                subject_id, concept_id
            ):
                delta.add_tombstone(subject_id, concept_id)
            else:
                return False
            if record_stats:
                self.concepts.record_occurrence(concept_id, -1)
                self.instances.record_occurrence(subject_id, -1)
                self.statistics.note_type_write(-1)
            return True
        property_id = self.properties.try_locate(predicate)
        subject_id = self.instances.try_locate(subject)
        if property_id is None or subject_id is None:
            return False
        if isinstance(obj, Literal):
            delta = self._delta.datatypes
            if delta.has_insert(property_id, subject_id, obj):
                delta.remove_insert(property_id, subject_id, obj)
            elif not delta.is_tombstoned(property_id, subject_id, obj) and obj in (
                self._base.datatype_store.literals_for(subject_id, property_id)
            ):
                delta.add_tombstone(property_id, subject_id, obj)
            else:
                return False
            if record_stats:
                self.properties.record_occurrence(property_id, -1)
                self.instances.record_occurrence(subject_id, -1)
                self.statistics.note_property_write(property_id, -1)
            return True
        object_id = self.instances.try_locate(obj)
        if object_id is None:
            return False
        delta = self._delta.objects
        if delta.has_insert(property_id, subject_id, object_id):
            delta.remove_insert(property_id, subject_id, object_id)
        elif not delta.is_tombstoned(
            property_id, subject_id, object_id
        ) and self._base.object_store.contains(subject_id, property_id, object_id):
            delta.add_tombstone(property_id, subject_id, object_id)
        else:
            return False
        if record_stats:
            self.properties.record_occurrence(property_id, -1)
            self.instances.record_occurrence(subject_id, -1)
            self.instances.record_occurrence(object_id, -1)
            self.statistics.note_property_write(property_id, -1)
        return True

    # ------------------------------------------------------------------ #
    # internals: compaction machinery
    # ------------------------------------------------------------------ #

    def _snapshot(self) -> _Snapshot:
        """Materialize the merged view (called under the write lock)."""
        return _Snapshot(
            object_triples=list(self.object_store.iter_triples()),
            datatype_triples=list(self.datatype_store.iter_triples()),
            type_triples=list(self.type_store.iter_triples()),
            operations=len(self._delta),
        )

    def _build_base(self, snapshot: _Snapshot) -> SuccinctEdge:
        """Build fresh succinct layouts off a snapshot (no locks needed)."""
        return SuccinctEdge(
            schema=self.schema,
            concepts=self.concepts,
            properties=self.properties,
            instances=self.instances,
            object_store=ObjectTripleStore(snapshot.object_triples, presorted=True),
            datatype_store=DatatypeTripleStore(
                snapshot.datatype_triples, LiteralStore(), presorted=True
            ),
            type_store=RDFTypeStore(snapshot.type_triples),
            statistics=self.statistics,
            skipped_triples=self.skipped_triples,
        )

    def _install(
        self,
        new_base: SuccinctEdge,
        snapshot: _Snapshot,
        started: float,
        staged: Optional["UpdatableSuccinctEdge"] = None,
    ) -> CompactionReport:
        """Swap in the rebuilt base and its delta (under the write lock).

        ``staged`` carries a pre-populated delta (background compaction
        replays racing writes into it before the swap); without it a fresh,
        empty delta is installed.  Every published attribute is a complete,
        internally consistent object before assignment, and old and new
        views hold the same visible triples, so readers that race the swap
        see correct data whichever objects they grabbed.
        """
        if staged is None:
            staged = UpdatableSuccinctEdge(new_base, policy=self.policy, ontology=self._ontology)
        self._base = new_base
        self._delta = staged._delta
        self.object_store = staged.object_store
        self.datatype_store = staged.datatype_store
        self.type_store = staged.type_store
        overflow_merged = self.concepts.merge_overflow() + self.properties.merge_overflow()
        self._delta_log = []
        self.compaction_epoch += 1
        report = CompactionReport(
            epoch=self.compaction_epoch,
            object_triples=len(snapshot.object_triples),
            datatype_triples=len(snapshot.datatype_triples),
            type_triples=len(snapshot.type_triples),
            operations_folded=snapshot.operations,
            overflow_terms_merged=overflow_merged,
            duration_ms=(time.perf_counter() - started) * 1000.0,
        )
        self.last_compaction = report
        return report
